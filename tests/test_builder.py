"""Unit tests for ProgramBuilder label resolution and emission."""

import pytest

from repro.isa import Opcode, ProgramBuilder, UndefinedLabelError


class TestLabels:
    def test_backward_reference(self):
        builder = ProgramBuilder()
        builder.label("top")
        builder.nop()
        builder.jmp("top")
        program = builder.build()
        assert program.instructions[1].target == 0

    def test_forward_reference(self):
        builder = ProgramBuilder()
        builder.jmp("end")
        builder.nop()
        builder.label("end")
        builder.halt()
        program = builder.build()
        assert program.instructions[0].target == 2

    def test_undefined_label_raises(self):
        builder = ProgramBuilder()
        builder.jmp("nowhere")
        with pytest.raises(UndefinedLabelError):
            builder.build()

    def test_duplicate_label_raises(self):
        builder = ProgramBuilder()
        builder.label("x")
        builder.nop()
        with pytest.raises(ValueError):
            builder.label("x")

    def test_entry_label(self):
        builder = ProgramBuilder()
        builder.nop()
        builder.label("start")
        builder.halt()
        builder.entry("start")
        assert builder.build().entry == 1

    def test_undefined_entry_raises(self):
        builder = ProgramBuilder()
        builder.nop()
        builder.entry("missing")
        with pytest.raises(UndefinedLabelError):
            builder.build()

    def test_numeric_target_used_directly(self):
        builder = ProgramBuilder()
        builder.nop()
        builder.jmp(0)
        assert builder.build().instructions[1].target == 0

    def test_here_reports_next_index(self):
        builder = ProgramBuilder()
        assert builder.here() == 0
        builder.nop()
        assert builder.here() == 1


class TestEmission:
    def test_store_operand_order(self):
        builder = ProgramBuilder()
        builder.store(5, 7, 16)  # value r5 into mem[r7 + 16]
        builder.halt()
        inst = builder.build().instructions[0]
        assert inst.opcode is Opcode.STORE
        assert inst.rs2 == 5 and inst.rs1 == 7 and inst.imm == 16

    def test_load_operands(self):
        builder = ProgramBuilder()
        builder.load(3, 8, -8)
        builder.halt()
        inst = builder.build().instructions[0]
        assert inst.rd == 3 and inst.rs1 == 8 and inst.imm == -8

    def test_all_alu_emitters(self):
        builder = ProgramBuilder()
        builder.add(1, 2, 3)
        builder.sub(1, 2, 3)
        builder.mul(1, 2, 3)
        builder.div(1, 2, 3)
        builder.and_(1, 2, 3)
        builder.or_(1, 2, 3)
        builder.xor(1, 2, 3)
        builder.sll(1, 2, 3)
        builder.srl(1, 2, 3)
        builder.slt(1, 2, 3)
        builder.halt()
        ops = [inst.opcode for inst in builder.build().instructions[:-1]]
        assert ops == [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV,
                       Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL,
                       Opcode.SRL, Opcode.SLT]

    def test_all_immediate_emitters(self):
        builder = ProgramBuilder()
        builder.addi(1, 2, 3)
        builder.andi(1, 2, 3)
        builder.ori(1, 2, 3)
        builder.xori(1, 2, 3)
        builder.slti(1, 2, 3)
        builder.slli(1, 2, 3)
        builder.srli(1, 2, 3)
        builder.li(1, 99)
        builder.halt()
        ops = [inst.opcode for inst in builder.build().instructions[:-1]]
        assert ops == [Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                       Opcode.SLTI, Opcode.SLLI, Opcode.SRLI, Opcode.LI]

    def test_control_emitters(self):
        builder = ProgramBuilder()
        builder.label("t")
        builder.beq(1, 2, "t")
        builder.bne(1, 2, "t")
        builder.blt(1, 2, "t")
        builder.bge(1, 2, "t")
        builder.jmp("t")
        builder.jr(5)
        builder.call("t")
        builder.callr(6)
        builder.ret()
        builder.halt()
        ops = [inst.opcode for inst in builder.build().instructions[:-1]]
        assert ops == [Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
                       Opcode.JMP, Opcode.JR, Opcode.CALL, Opcode.CALLR,
                       Opcode.RET]

    def test_emit_returns_index(self):
        builder = ProgramBuilder()
        assert builder.nop() == 0
        assert builder.halt() == 1

    def test_builder_metadata_propagates(self):
        builder = ProgramBuilder("demo", code_base=0x100, data_base=0x200,
                                 stack_base=0x300)
        builder.halt()
        program = builder.build()
        assert program.name == "demo"
        assert program.code_base == 0x100
        assert program.data_base == 0x200
        assert program.stack_base == 0x300
