"""Unit tests for the synthetic workload generators."""

import pytest

from repro.branch import BranchPredictor, PredictorConfig
from repro.cache import MemoryHierarchy, paper_hierarchy_config
from repro.workloads import (
    PAPER_WORKLOADS,
    available_workloads,
    build_workload,
    init_pointer_chain,
    init_jump_table,
    round_up_power_of_two,
)
from repro.functional import Memory

import numpy as np


class TestRegistry:
    def test_nine_paper_workloads(self):
        assert len(PAPER_WORKLOADS) == 9
        assert set(PAPER_WORKLOADS) == {
            "ammp", "art", "gcc", "mcf", "parser", "perl", "twolf",
            "vortex", "vpr",
        }

    def test_available_matches_paper_order(self):
        assert available_workloads() == PAPER_WORKLOADS

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("quake")

    def test_custom_seed(self):
        a = build_workload("vpr", seed=1)
        b = build_workload("vpr", seed=2)
        machine_a, machine_b = a.make_machine(), b.make_machine()
        machine_a.run(5000)
        machine_b.run(5000)
        assert machine_a.registers != machine_b.registers


@pytest.mark.parametrize("name", PAPER_WORKLOADS)
class TestEveryWorkload:
    def test_builds_and_runs(self, name):
        workload = build_workload(name)
        machine = workload.make_machine()
        executed = machine.run(20_000)
        assert executed == 20_000
        assert not machine.halted

    def test_deterministic(self, name):
        a = build_workload(name).make_machine()
        b = build_workload(name).make_machine()
        a.run(10_000)
        b.run(10_000)
        assert a.pc == b.pc
        assert a.registers == b.registers

    def test_machines_are_isolated(self, name):
        workload = build_workload(name)
        first = workload.make_machine()
        first.run(10_000)
        second = workload.make_machine()
        second.run(10_000)
        assert first.registers == second.registers

    def test_has_memory_and_branch_activity(self, name):
        workload = build_workload(name)
        machine = workload.make_machine()
        counts = {"mem": 0, "branch": 0}

        machine.run(
            10_000,
            mem_hook=lambda *a: counts.__setitem__(
                "mem", counts["mem"] + 1),
            branch_hook=lambda *a: counts.__setitem__(
                "branch", counts["branch"] + 1),
        )
        assert counts["mem"] > 100, "workload must exercise the caches"
        assert counts["branch"] > 100, "workload must exercise the predictor"

    def test_repr(self, name):
        assert name in repr(build_workload(name))


class TestWorkloadCharacters:
    """The per-benchmark characters the experiments rely on."""

    def _miss_rate(self, name, count=40_000):
        workload = build_workload(name)
        machine = workload.make_machine()
        hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=16))
        machine.run(
            count,
            mem_hook=lambda pc, np_, a, w: hierarchy.warm_access(a, w, False),
        )
        return hierarchy.l1d.stats.miss_rate()

    def _mispredict_rate(self, name, count=40_000):
        workload = build_workload(name)
        machine = workload.make_machine()
        predictor = BranchPredictor(PredictorConfig(4096, 1024, 8))
        machine.run(
            count,
            branch_hook=lambda pc, np_, inst, taken:
                predictor.predict_and_update(pc, inst, taken, np_),
        )
        return predictor.stats.misprediction_rate()

    def test_mcf_is_cache_hostile(self):
        assert self._miss_rate("mcf") > 2 * self._miss_rate("ammp")

    def test_art_branches_predictable(self):
        assert self._mispredict_rate("art") < 0.06

    def test_parser_branches_hard(self):
        assert self._mispredict_rate("parser") > \
            self._mispredict_rate("art")

    def test_gcc_code_footprint_large(self):
        gcc = build_workload("gcc")
        assert len(gcc.program) > 1000
        small = build_workload("mcf")
        assert len(gcc.program) > 5 * len(small.program)

    def test_vortex_is_store_rich(self):
        workload = build_workload("vortex")
        machine = workload.make_machine()
        stores = [0]
        machine.run(
            20_000,
            mem_hook=lambda pc, np_, a, w: stores.__setitem__(
                0, stores[0] + int(w)),
        )
        assert stores[0] > 500


class TestMemoryInit:
    def test_pointer_chain_is_a_cycle(self):
        memory = Memory()
        rng = np.random.default_rng(0)
        head = init_pointer_chain(memory, 0x1000, 64, rng)
        seen = set()
        node = head
        for _ in range(64):
            assert node not in seen
            seen.add(node)
            node = memory.load(node)
        assert node == head
        assert len(seen) == 64

    def test_pointer_chain_needs_two_nodes(self):
        with pytest.raises(ValueError):
            init_pointer_chain(Memory(), 0, 1, np.random.default_rng(0))

    def test_jump_table(self):
        memory = Memory()
        init_jump_table(memory, 0x2000, [5, 9, 13])
        assert memory.load(0x2000) == 5
        assert memory.load(0x2010) == 13

    def test_round_up_power_of_two(self):
        assert round_up_power_of_two(1) == 1
        assert round_up_power_of_two(3) == 4
        assert round_up_power_of_two(64) == 64
        assert round_up_power_of_two(65) == 128

    def test_mem_scale_grows_footprint(self):
        small = build_workload("mcf", mem_scale=1)
        large = build_workload("mcf", mem_scale=2)
        assert large.memory.footprint_words() > \
            1.5 * small.memory.footprint_words()
