"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_workloads_command(self):
        args = build_parser().parse_args(["workloads"])
        assert args.command == "workloads"

    def test_true_ipc_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["true-ipc"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["true-ipc", "quake"])

    def test_scale_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["true-ipc", "gcc", "--scale", "huge"])

    def test_sample_collects_methods(self):
        args = build_parser().parse_args(
            ["sample", "gcc", "--method", "S$BP", "--method", "None"],
        )
        assert args.method == ["S$BP", "None"]

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_design_command(self):
        args = build_parser().parse_args(
            ["design", "mcf", "--target-error", "0.05"],
        )
        assert args.command == "design"
        assert args.target_error == 0.05

    def test_reproduce_command(self):
        args = build_parser().parse_args(
            ["reproduce", "--output", "grid.csv"],
        )
        assert args.command == "reproduce"
        assert args.output == "grid.csv"

    def test_compare_command(self):
        args = build_parser().parse_args(["compare", "art"])
        assert args.command == "compare"

    def test_matrix_command_defaults(self):
        args = build_parser().parse_args(["matrix"])
        assert args.command == "matrix"
        assert args.jobs is None
        assert args.cache == "auto"
        assert args.workload is None
        assert not args.quiet

    def test_matrix_command_flags(self):
        args = build_parser().parse_args(
            ["matrix", "--jobs", "4", "--scale", "ci", "--cache", "off",
             "--workload", "ammp", "--workload", "gcc", "--quiet"],
        )
        assert args.jobs == 4
        assert args.scale == "ci"
        assert args.cache == "off"
        assert args.workload == ["ammp", "gcc"]
        assert args.quiet

    def test_matrix_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--workload", "quake"])

    def test_matrix_collects_methods(self):
        args = build_parser().parse_args(
            ["matrix", "--method", "rsr", "--method", "S$BP"],
        )
        assert args.method == ["rsr", "S$BP"]

    def test_methods_command(self):
        args = build_parser().parse_args(["methods"])
        assert args.command == "methods"


class TestCommands:
    def test_workloads_lists_all_nine(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("ammp", "art", "gcc", "mcf", "parser", "perl",
                     "twolf", "vortex", "vpr"):
            assert name in out

    def test_true_ipc_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["true-ipc", "ammp"]) == 0
        out = capsys.readouterr().out
        assert "true IPC" in out

    def test_sample_default_methods(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["sample", "ammp"]) == 0
        out = capsys.readouterr().out
        assert "S$BP" in out
        assert "R$BP (20%)" in out
        assert "rel. error" in out

    def test_sample_explicit_method(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["sample", "ammp", "--method", "None"]) == 0
        out = capsys.readouterr().out
        assert "None" in out
        assert "S$BP" not in out.replace("true IPC", "")

    def test_sample_resolves_registry_alias(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["sample", "ammp", "--method", "rsr"]) == 0
        out = capsys.readouterr().out
        assert "R$BP (100%)" in out

    def test_methods_lists_registry(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("None", "S$BP", "R$BP (100%)", "RBP"):
            assert name in out

    def test_matrix_method_subset(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["matrix", "--workload", "ammp", "--method", "rsr",
                     "--jobs", "1", "--cache", str(tmp_path / "cache"),
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "R$BP (100%)" in out  # alias shown under its canonical name
        assert "S$BP" not in out

    def test_matrix_unknown_method_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["matrix", "--workload", "ammp", "--method", "Bogus",
                     "--jobs", "1", "--cache", "off", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Bogus" in err
        assert "Traceback" not in err


class TestTraceAndProfileParsing:
    def test_sample_accepts_trace(self):
        args = build_parser().parse_args(
            ["sample", "ammp", "--trace", "out.jsonl"],
        )
        assert args.trace == "out.jsonl"

    def test_matrix_accepts_trace(self):
        args = build_parser().parse_args(
            ["matrix", "--trace", "out.jsonl"],
        )
        assert args.trace == "out.jsonl"

    def test_profile_command(self):
        args = build_parser().parse_args(
            ["profile", "gcc", "--method", "S$BP", "--scale", "ci"],
        )
        assert args.command == "profile"
        assert args.method == ["S$BP"]
        assert args.trace is None

    def test_profile_requires_known_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "quake"])


class TestFailurePaths:
    """Bad input exits non-zero with a readable message, not a traceback."""

    def test_unknown_workload_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sample", "quake"])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        assert "quake" in err

    def test_unknown_method_readable_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["sample", "ammp", "--method", "Bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Bogus" in err
        assert "Traceback" not in err

    def test_invalid_scale_env_readable_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "huge")
        assert main(["sample", "ammp", "--method", "None"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "huge" in err
        assert "Traceback" not in err


class TestTraceCommands:
    def test_sample_trace_writes_jsonl(self, capsys, monkeypatch, tmp_path):
        import json

        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        path = tmp_path / "trace.jsonl"
        assert main(["sample", "ammp", "--method", "None",
                     "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "time per phase" in out
        lines = [line for line in path.read_text().splitlines() if line]
        assert len(lines) == 10  # one record per ci-tier cluster
        for line in lines:
            record = json.loads(line)
            assert record["type"] == "cluster"

    def test_profile_prints_phase_split(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["profile", "ammp", "--method", "None"]) == 0
        out = capsys.readouterr().out
        assert "time per phase" in out
        assert "hot_sim" in out

    def test_profile_surfaces_compaction_section(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["profile", "ammp", "--method", "rsr"]) == 0
        out = capsys.readouterr().out
        assert "Skip-log compaction" in out
        assert "dedup ratio" in out
        assert "peak gap records" in out

    def test_profile_without_log_omits_compaction(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["profile", "ammp", "--method", "None"]) == 0
        out = capsys.readouterr().out
        assert "Skip-log compaction" not in out


class TestOutputStability:
    """Golden-ish assertions on section headers and registry listings:
    downstream tooling greps this output, so renames must be deliberate."""

    def test_methods_listing_is_stable(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "Registered warm-up methods" in out
        assert "aliases 'rsr' and 'smarts' also resolve" in out
        # Header row and one row per registered class family.
        assert "name" in out and "class" in out
        for name in ("None", "S$BP", "SBP", "RBP", "FP (20%)",
                     "R$ (100%)", "R$BP (100%)", "R$BP (20%)"):
            assert name in out, f"registry listing lost {name!r}"
        for class_name in ("NoWarmup", "SmartsWarmup",
                           "FixedPeriodWarmup",
                           "ReverseStateReconstruction"):
            assert class_name in out

    def test_profile_section_headers_are_stable(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["profile", "ammp", "--method", "rsr"]) == 0
        out = capsys.readouterr().out
        for header in ("time per phase",
                       "Updates and events per structure",
                       "Trace-record totals per method",
                       "Skip-log compaction"):
            assert header in out, f"profile output lost {header!r}"
        for phase in ("cold_skip", "reconstruct", "hot_sim"):
            assert phase in out

    def test_profile_unknown_method_with_trace_exits_2(
            self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        trace_path = tmp_path / "trace.jsonl"
        assert main(["profile", "ammp", "--method", "Bogus",
                     "--trace", str(trace_path)]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Bogus" in captured.err
        assert "Traceback" not in captured.err
        # Failing before any run means no partial trace file appears.
        assert not trace_path.exists()


class TestAuditCommand:
    def test_audit_parser_defaults(self):
        args = build_parser().parse_args(["audit", "ammp"])
        assert args.command == "audit"
        assert args.method is None
        assert args.source == "auto"
        assert args.json is None

    def test_audit_parser_flags(self):
        args = build_parser().parse_args(
            ["audit", "gcc", "--method", "rsr", "--source", "both",
             "--json", "audit.json", "--scale", "ci"],
        )
        assert args.method == ["rsr"]
        assert args.source == "both"
        assert args.json == "audit.json"

    def test_audit_rejects_unknown_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "ammp", "--source", "x"])

    def test_audit_reports_attribution(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert main(["audit", "ammp", "--method", "rsr"]) == 0
        out = capsys.readouterr().out
        assert "accuracy audit" in out
        assert "cold err" in out and "samp err" in out
        assert "error attribution per method" in out
        assert "R$BP (100%)" in out

    def test_audit_env_is_restored(self, capsys, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert main(["audit", "ammp", "--method", "smarts"]) == 0
        assert "REPRO_AUDIT" not in os.environ

    def test_audit_source_both_asserts_equivalence(
            self, capsys, monkeypatch, tmp_path):
        import json

        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        path = tmp_path / "audit.json"
        assert main(["audit", "ammp", "--method", "rsr",
                     "--source", "both", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "bit-identical audit JSON" in out
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-audit-v1"
        assert payload["clusters"]

    def test_audit_unknown_method_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert main(["audit", "ammp", "--method", "Bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Bogus" in err


class TestClusterJobs:
    """--cluster-jobs / REPRO_CLUSTER_JOBS plumbing on the CLI."""

    @pytest.mark.parametrize("command", [
        ["sample", "ammp"],
        ["matrix"],
        ["profile", "gcc"],
    ])
    def test_flag_parses(self, command):
        args = build_parser().parse_args(command + ["--cluster-jobs", "2"])
        assert args.cluster_jobs == 2

    def test_flag_defaults_to_env_resolution(self):
        args = build_parser().parse_args(["sample", "ammp"])
        assert args.cluster_jobs is None

    def test_methods_lists_shardable_column(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "shardable" in out
        lines = {line.split()[0]: line for line in out.splitlines()
                 if line.strip() and not line.startswith(("name", "-"))}
        assert lines["R$BP"].rstrip().endswith("yes")
        assert lines["S$BP"].rstrip().endswith("no")

    def test_sample_runs_sharded(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
        assert main(["sample", "ammp", "--method", "rsr",
                     "--cluster-jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "R$BP (100%)" in out
        assert "rel. error" in out

    def test_non_shardable_method_notice(self, capsys, monkeypatch,
                                         tmp_path):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
        assert main(["sample", "ammp", "--method", "S$BP",
                     "--cluster-jobs", "2"]) == 0
        err = capsys.readouterr().err
        assert "cannot be sharded" in err
        assert "Traceback" not in err

    def test_negative_cluster_jobs_exits_2(self, capsys, monkeypatch,
                                           tmp_path):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
        assert main(["sample", "ammp", "--method", "None",
                     "--cluster-jobs", "-3"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_matrix_bad_env_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        monkeypatch.setenv("REPRO_CLUSTER_JOBS", "lots")
        assert main(["matrix", "--workload", "ammp", "--method", "None",
                     "--jobs", "1", "--cache", "off", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "REPRO_CLUSTER_JOBS" in err
        assert "Traceback" not in err
