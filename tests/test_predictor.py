"""Unit tests for the combined branch predictor."""

import pytest

from repro.branch import BranchPredictor, PredictorConfig
from repro.isa import Instruction, Opcode


@pytest.fixture
def predictor():
    return BranchPredictor(PredictorConfig(
        pht_entries=256, btb_entries=64, ras_entries=8,
    ))


def cond(pc_target):
    return Instruction(Opcode.BNE, rs1=1, rs2=2, target=pc_target)


class TestConditionalPrediction:
    def test_initially_predicts_fallthrough(self, predictor):
        assert predictor.predict(10, cond(50)) == 11

    def test_learns_taken_branch(self, predictor):
        inst = cond(50)
        for _ in range(4):
            predictor.update(10, inst, True, 50)
        # Re-point history at the trained pattern by replaying it.
        # After consistent training, a biased branch predicts taken via
        # some entry; check end-to-end through predict_and_update.
        predictor.predict_and_update(10, inst, True, 50)
        # With an all-taken history the counters along the path saturate.
        assert predictor.stats.conditional_branches == 1

    def test_predict_and_update_counts_mispredictions(self, predictor):
        inst = cond(50)
        assert predictor.predict_and_update(10, inst, True, 50)  # cold miss
        assert predictor.stats.mispredictions == 1

    def test_biased_branch_converges(self, predictor):
        inst = cond(50)
        mispredictions = 0
        for _ in range(100):
            if predictor.predict_and_update(10, inst, True, 50):
                mispredictions += 1
        # After warm-up the always-taken branch predicts correctly.
        assert mispredictions < 10
        assert predictor.stats.misprediction_rate() < 0.1

    def test_not_taken_branch_needs_no_btb(self, predictor):
        inst = cond(50)
        for _ in range(5):
            predictor.update(10, inst, False, 11)
        assert not predictor.predict_and_update(10, inst, False, 11)


class TestTargets:
    def test_direct_jump_learns_target(self, predictor):
        inst = Instruction(Opcode.JMP, target=99)
        assert predictor.predict_and_update(5, inst, True, 99)  # BTB cold
        assert not predictor.predict_and_update(5, inst, True, 99)

    def test_indirect_jump_changing_target(self, predictor):
        inst = Instruction(Opcode.JR, rs1=3)
        predictor.predict_and_update(5, inst, True, 40)
        assert predictor.predict(5, inst) == 40
        predictor.predict_and_update(5, inst, True, 60)
        assert predictor.predict(5, inst) == 60

    def test_call_pushes_return_address(self, predictor):
        call = Instruction(Opcode.CALL, target=100)
        predictor.update(7, call, True, 100)
        assert predictor.ras.peek() == 8

    def test_ret_predicted_from_ras(self, predictor):
        call = Instruction(Opcode.CALL, target=100)
        ret = Instruction(Opcode.RET)
        predictor.update(7, call, True, 100)
        assert predictor.predict(105, ret) == 8
        predictor.update(105, ret, True, 8)
        assert predictor.ras.depth == 0

    def test_nested_calls_predict_in_order(self, predictor):
        call = Instruction(Opcode.CALL, target=50)
        ret = Instruction(Opcode.RET)
        predictor.update(10, call, True, 50)
        predictor.update(52, call, True, 50)
        assert predictor.predict(60, ret) == 53
        predictor.update(60, ret, True, 53)
        assert predictor.predict(61, ret) == 11

    def test_empty_ras_predicts_fallthrough(self, predictor):
        ret = Instruction(Opcode.RET)
        assert predictor.predict(30, ret) == 31


class TestAccounting:
    def test_total_updates_counts_everything(self, predictor):
        base = predictor.total_updates()
        predictor.update(1, cond(9), True, 9)        # pht + btb
        predictor.update(2, Instruction(Opcode.CALL, target=5), True, 5)
        predictor.update(6, Instruction(Opcode.RET), True, 3)
        assert predictor.total_updates() - base == 5

    def test_reset(self, predictor):
        predictor.predict_and_update(1, cond(9), True, 9)
        predictor.reset()
        assert predictor.stats.conditional_branches == 0
        assert predictor.total_updates() == 0
        assert predictor.pht.history == 0

    def test_clear_reconstructed_clears_both_tables(self, predictor):
        predictor.pht.reconstructed[1] = True
        predictor.btb.reconstructed[1] = True
        predictor.clear_reconstructed()
        assert not any(predictor.pht.reconstructed)
        assert not any(predictor.btb.reconstructed)

    def test_repr(self, predictor):
        assert "pht=256" in repr(predictor)
