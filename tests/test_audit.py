"""Tests for the accuracy-audit subsystem: reference trajectories,
divergence probes, error attribution, and the equivalence guarantees
(raw == compacted sources, serial == parallel merges, S$BP == reference).
"""

import json

import pytest

from repro.analysis import reference_trajectory_for
from repro.core import ReverseStateReconstruction
from repro.harness.experiment import SCALES, run_matrix
from repro.harness.export import audit_to_json, save_audit
from repro.harness.parallel import execute_matrix, merged_telemetry
from repro.harness.reporting import (
    AUDIT_COLUMNS,
    audit_rows,
    audit_summary,
    format_audit_report,
)
from repro.sampling import SampledSimulator
from repro.telemetry import RECORD_AUDIT, Telemetry, audit_enabled
from repro.warmup import SmartsWarmup, make_method
from repro.workloads import build_workload

CI = SCALES["ci"]
METHOD_NAMES = ("S$BP", "R$BP (100%)")


def audit_suite():
    """Picklable module-level method factory (crosses the pool boundary)."""
    return [make_method(name) for name in METHOD_NAMES]


def make_simulator(workload_name="ammp", telemetry=Telemetry):
    workload = build_workload(workload_name, mem_scale=CI.mem_scale)
    return SampledSimulator(
        workload, CI.regimen(), CI.configs(),
        warmup_prefix=CI.warmup_prefix,
        detail_ramp=CI.detail_ramp,
        telemetry=telemetry,
    )


@pytest.fixture
def audit_env(monkeypatch, tmp_path):
    """REPRO_AUDIT on, other switches neutral, cache in tmp."""
    monkeypatch.setenv("REPRO_AUDIT", "1")
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.delenv("REPRO_LOG_COMPACTION", raising=False)
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
    return tmp_path


def run_audited(method, workload_name="ammp"):
    simulator = make_simulator(workload_name)
    result = simulator.run(method)
    return result, result.extra["telemetry"]


def audit_records(snapshot):
    return [r for r in snapshot.trace_records
            if r.get("type") == RECORD_AUDIT]


class TestEnvGate:
    def test_audit_enabled_values(self, monkeypatch):
        for off in ("", "0", "off", "false", "no"):
            monkeypatch.setenv("REPRO_AUDIT", off)
            assert not audit_enabled()
        monkeypatch.delenv("REPRO_AUDIT")
        assert not audit_enabled()
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert audit_enabled()

    def test_audit_off_leaves_no_residue(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        _, snapshot = run_audited(ReverseStateReconstruction(0.2))
        assert audit_records(snapshot) == []
        assert "audit.clusters_probed" not in snapshot.counters
        assert "audit" not in snapshot.phase_seconds

    def test_audit_env_alone_enables_collection(self, audit_env):
        """REPRO_AUDIT without REPRO_TELEMETRY still collects snapshots
        (telemetry_from_env returns a live session)."""
        from repro.telemetry import collection_enabled
        assert collection_enabled()


class TestProbeRecords:
    def test_per_cluster_records_complete(self, audit_env):
        _, snapshot = run_audited(ReverseStateReconstruction(0.2))
        records = audit_records(snapshot)
        assert len(records) == CI.regimen().num_clusters
        for record in records:
            for column in AUDIT_COLUMNS:
                assert column in record, f"missing {column}"
            assert record["cold_start_error"] == pytest.approx(
                record["ipc"] - record["ref_ipc"]
            )
            assert record["sampling_error"] == pytest.approx(
                record["ref_ipc"] - record["true_ipc"]
            )
            # RSR runs an on-demand PHT engine: census must be present.
            assert record["pht_ambiguity_mass"] is not None
            assert record["pht_exact"] >= 0
        assert snapshot.counters["audit.clusters_probed"] == len(records)
        assert "audit" in snapshot.phase_seconds

    def test_smarts_self_consistency(self, audit_env):
        """S$BP audited against the SMARTS reference: perfect agreement,
        exactly zero cold-start error, no census (no on-demand engine)."""
        _, snapshot = run_audited(SmartsWarmup())
        records = audit_records(snapshot)
        assert records
        for record in records:
            assert record["l1i_tag_agreement"] == 1.0
            assert record["l1d_tag_agreement"] == 1.0
            assert record["l2_tag_agreement"] == 1.0
            assert record["l1d_lru_agreement"] == 1.0
            assert record["pht_counter_agreement"] == 1.0
            assert record["ghr_match"] is True
            assert record["btb_agreement"] == 1.0
            assert record["ras_agreement"] == 1.0
            assert record["cold_start_error"] == 0.0
            assert record["pht_ambiguity_mass"] is None

    def test_audit_does_not_perturb_results(self, audit_env, monkeypatch):
        """Probes observe state; they never change the simulation."""
        audited_result, audited = run_audited(
            ReverseStateReconstruction(0.2)
        )
        monkeypatch.setenv("REPRO_AUDIT", "0")
        plain_result, plain = run_audited(ReverseStateReconstruction(0.2))
        assert plain_result.cluster_ipcs == audited_result.cluster_ipcs
        assert plain_result.cost.as_dict() == \
            audited_result.cost.as_dict()
        # Phase timers outside "audit" cover identical work.
        assert set(plain.phase_seconds) | {"audit"} == \
            set(audited.phase_seconds)


class TestSourceEquivalence:
    @pytest.mark.parametrize("fraction", [1.0, 0.4])
    def test_raw_and_compacted_audits_bit_identical(self, audit_env,
                                                    fraction):
        texts = {}
        for source in ("raw", "compacted"):
            _, snapshot = run_audited(
                ReverseStateReconstruction(fraction=fraction,
                                           source=source)
            )
            texts[source] = audit_to_json(snapshot)
        assert texts["raw"] == texts["compacted"]
        payload = json.loads(texts["raw"])
        assert payload["schema"] == "repro-audit-v1"
        assert len(payload["clusters"]) == CI.regimen().num_clusters

    def test_compaction_env_composes(self, audit_env, monkeypatch):
        """REPRO_AUDIT + REPRO_LOG_COMPACTION: the env-selected source
        produces the same audit as the explicitly pinned one."""
        monkeypatch.setenv("REPRO_LOG_COMPACTION", "1")
        _, via_env = run_audited(ReverseStateReconstruction(0.4))
        monkeypatch.delenv("REPRO_LOG_COMPACTION")
        _, pinned = run_audited(
            ReverseStateReconstruction(0.4, source="compacted")
        )
        assert audit_to_json(via_env) == audit_to_json(pinned)


class TestParallelEquivalence:
    def test_serial_and_parallel_audits_bit_identical(self, audit_env):
        serial = run_matrix(audit_suite, workload_names=("ammp",),
                            scale=CI)
        parallel = execute_matrix(
            audit_suite, workload_names=("ammp",), scale=CI, jobs=2,
        )
        serial_snapshot = merged_telemetry(serial)
        parallel_snapshot = merged_telemetry(parallel)
        assert audit_records(serial_snapshot)
        assert audit_to_json(parallel_snapshot) == \
            audit_to_json(serial_snapshot)
        # The audit counters (deterministic integers) also fold equal.
        audit_counters = {
            name: value
            for name, value in serial_snapshot.counters.items()
            if name.startswith("audit.")
        }
        assert audit_counters
        assert {
            name: value
            for name, value in parallel_snapshot.counters.items()
            if name.startswith("audit.")
        } == audit_counters


class TestReferenceTrajectory:
    def test_trajectory_memo_and_disk_cache(self, audit_env):
        from repro.analysis import audit as audit_module
        workload = build_workload("ammp", mem_scale=CI.mem_scale)
        audit_module._TRAJECTORY_MEMO.clear()
        first = reference_trajectory_for(
            workload, CI.regimen(), CI.configs(),
            warmup_prefix=CI.warmup_prefix, detail_ramp=CI.detail_ramp,
        )
        assert len(first.states) == CI.regimen().num_clusters
        again = reference_trajectory_for(
            workload, CI.regimen(), CI.configs(),
            warmup_prefix=CI.warmup_prefix, detail_ramp=CI.detail_ramp,
        )
        assert again is first
        # A fresh process would miss the memo but hit the disk cache.
        audit_module._TRAJECTORY_MEMO.clear()
        from_disk = reference_trajectory_for(
            workload, CI.regimen(), CI.configs(),
            warmup_prefix=CI.warmup_prefix, detail_ramp=CI.detail_ramp,
        )
        assert from_disk == first

    def test_states_are_ordered_and_start_aligned(self, audit_env):
        workload = build_workload("ammp", mem_scale=CI.mem_scale)
        trajectory = reference_trajectory_for(
            workload, CI.regimen(), CI.configs(),
            warmup_prefix=CI.warmup_prefix, detail_ramp=CI.detail_ramp,
        )
        starts = list(CI.regimen().cluster_starts())
        assert [s.start for s in trajectory.states] == starts
        assert [s.cluster_index for s in trajectory.states] == \
            list(range(len(starts)))


class TestReporting:
    def test_rows_project_and_sort(self, audit_env):
        _, snapshot = run_audited(ReverseStateReconstruction(0.2))
        rows = audit_rows(snapshot)
        assert rows
        for row in rows:
            assert tuple(row) == AUDIT_COLUMNS
        clusters = [row["cluster"] for row in rows]
        assert clusters == sorted(clusters)

    def test_summary_attribution_telescopes(self, audit_env):
        result, snapshot = run_audited(ReverseStateReconstruction(0.2))
        summary = audit_summary(snapshot)[0]
        assert summary["workload"] == "ammp"
        assert summary["method"] == "R$BP (20%)"
        # cold-start bias + sampling bias == estimate - truth.
        assert summary["cold_start_bias"] + summary["sampling_bias"] == \
            pytest.approx(summary["mean_ipc"] - summary["true_ipc"])
        assert summary["mean_ipc"] == pytest.approx(result.estimate.mean)

    def test_format_audit_report_sections(self, audit_env):
        _, snapshot = run_audited(ReverseStateReconstruction(0.2))
        text = format_audit_report(snapshot, title="audit check")
        assert "audit check" in text
        assert "cold err" in text
        assert "error attribution per method" in text

    def test_format_audit_report_empty(self):
        from repro.telemetry import EMPTY_SNAPSHOT
        assert format_audit_report(EMPTY_SNAPSHOT) == ""

    def test_save_audit_round_trips(self, audit_env, tmp_path):
        _, snapshot = run_audited(ReverseStateReconstruction(0.2))
        path = tmp_path / "audit.json"
        save_audit(snapshot, path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-audit-v1"
        assert payload["summary"][0]["clusters"] == \
            CI.regimen().num_clusters
