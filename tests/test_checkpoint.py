"""Property tests for FunctionalCheckpoint capture/pickle/restore.

The two-phase pipeline rests on one claim: a checkpoint restored onto a
fresh machine is indistinguishable — architecturally — from the machine
it was captured on.  These tests state that as a trace property: after
``capture -> pickle -> restore``, the next N instructions produce the
identical stream of (pc, next pc, memory address, taken bit) on both
machines, for every bundled workload.
"""

import pickle

import pytest

from repro.functional import FunctionalCheckpoint
from repro.workloads import available_workloads, build_workload

#: Instructions executed before capture (past the trivial startup code)
#: and compared after restore.
WARMUP = 1_500
TRACE = 600


def _trace(machine, count):
    """The next `count` steps as (index, next_index, taken, mem, halted)."""
    events = []
    for _ in range(count):
        result = machine.step()
        events.append((result.index, result.next_index, result.taken,
                       result.mem_address, result.halted))
        if result.halted:
            break
    return events


@pytest.mark.parametrize("name", available_workloads())
def test_roundtrip_preserves_execution_trace(name):
    workload = build_workload(name)
    original = workload.make_machine()
    original.run(WARMUP)

    checkpoint = FunctionalCheckpoint.capture(original)
    blob = pickle.dumps(checkpoint)

    restored_machine = workload.make_machine()
    pickle.loads(blob).restore(restored_machine)

    assert restored_machine.pc == original.pc
    assert restored_machine.instructions_retired == \
        original.instructions_retired
    assert _trace(restored_machine, TRACE) == _trace(original, TRACE)
    # Both machines arrive at the same architectural state afterwards.
    assert restored_machine.pc == original.pc
    assert list(restored_machine.registers) == list(original.registers)


def test_restore_overwrites_diverged_machine():
    """Restoring onto a machine that ran elsewhere rewinds it exactly."""
    workload = build_workload("mcf")
    original = workload.make_machine()
    original.run(WARMUP)
    checkpoint = FunctionalCheckpoint.capture(original)

    diverged = workload.make_machine()
    diverged.run(WARMUP + 3_000)  # well past the capture point

    checkpoint.restore(diverged)
    assert _trace(diverged, TRACE) == _trace(original, TRACE)


def test_restore_invalidates_ifetch_marker():
    """A restore moves execution discontinuously, so the ifetch-continuity
    marker must drop — the next observed run re-reports its first block."""
    workload = build_workload("ammp")
    machine = workload.make_machine()
    machine.run(200, ifetch_hook=lambda address: None)
    assert machine._last_fetch[1] != -1

    checkpoint = FunctionalCheckpoint.capture(machine)
    checkpoint.restore(machine)
    assert machine._last_fetch == (0, -1)

    fetched = []
    machine.run(1, ifetch_hook=fetched.append)
    assert len(fetched) == 1


def test_checkpoint_is_frozen_and_carries_resident_words():
    workload = build_workload("gcc")
    machine = workload.make_machine()
    machine.run(WARMUP)
    checkpoint = FunctionalCheckpoint.capture(machine)
    assert checkpoint.resident_words() > 0
    with pytest.raises(AttributeError):
        checkpoint.pc = 0


def test_checkpoint_memory_is_isolated():
    """Stores on the restored machine never leak back into the capture
    (each restore builds a private memory image)."""
    workload = build_workload("vortex")
    machine = workload.make_machine()
    machine.run(WARMUP)
    checkpoint = FunctionalCheckpoint.capture(machine)

    first = workload.make_machine()
    checkpoint.restore(first)
    first.run(2_000)  # mutate memory past the capture point

    second = workload.make_machine()
    checkpoint.restore(second)
    assert _trace(second, TRACE) == _trace(machine, TRACE)
