"""Tests for hierarchical span tracing: recorder semantics, cross-process
propagation, the Chrome trace export, the events firehose, and the HTML
run report."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.harness.experiment import SCALES
from repro.harness.parallel import LiveProgress
from repro.harness.report import render_report
from repro.sampling import SampledSimulator
from repro.telemetry import (
    CHROME_TRACE_SCHEMA,
    NULL_SPANS,
    SpanContext,
    SpanRecorder,
    Telemetry,
    build_span_tree,
    check_lane_nesting,
    read_events,
    read_spans,
    read_trace,
    recorder_from_env,
    span_tree_shape,
    spans_enabled,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace,
)
from repro.warmup import make_method
from repro.workloads import build_workload

CI = SCALES["ci"]
#: Sharded runs add phase_a/phase_b grouping spans; collapsing them (and
#: merging same-named cluster spans across phases) recovers the serial tree.
COLLAPSE = ("phase_a", "phase_b")


def run_sampled(cluster_jobs, method="R$BP (20%)", workload="ammp"):
    """One ci-tier sampled run; returns (result, telemetry snapshot)."""
    built = build_workload(workload, mem_scale=CI.mem_scale)
    telemetry = Telemetry()
    simulator = SampledSimulator(
        built, CI.regimen(), CI.configs(),
        warmup_prefix=CI.warmup_prefix,
        detail_ramp=CI.detail_ramp,
        telemetry=telemetry,
        cluster_jobs=cluster_jobs,
    )
    result = simulator.run(make_method(method))
    return result, telemetry.snapshot()


class TestSpanRecorder:
    def test_nesting_sets_parent_links(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        inner, outer = recorder.records
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert outer["dur"] >= inner["dur"] >= 0

    def test_counter_record_shape(self):
        recorder = SpanRecorder()
        recorder.counter("log.stored_records", 42)
        (record,) = recorder.records
        assert record["type"] == "counter"
        assert record["name"] == "log.stored_records"
        assert record["value"] == 42

    def test_context_roundtrips_through_encode_decode(self):
        recorder = SpanRecorder()
        with recorder.span("root"):
            context = recorder.context()
            decoded = SpanContext.decode(context.encode())
        assert decoded == context
        assert decoded.parent_id is not None
        assert SpanContext.decode("") is None
        assert SpanContext.decode("garbage") is None

    def test_worker_spans_reparent_under_sender(self):
        parent = SpanRecorder()
        with parent.span("run"):
            context = parent.context()
            worker = SpanRecorder(context=context)
            with worker.span("cluster 0"):
                pass
            parent.adopt(worker.export())
        roots = build_span_tree(parent.records)
        assert [node["name"] for node in roots] == ["run"]
        children = [child["name"] for child in roots[0]["children"]]
        assert children == ["cluster 0"]

    def test_same_process_recorders_never_collide(self):
        # The in-process map_tasks fallback creates worker recorders in
        # the parent's pid; the per-recorder instance index keeps ids
        # unique even then.
        first, second = SpanRecorder(), SpanRecorder()
        with first.span("a"):
            pass
        with second.span("b"):
            pass
        ids = {first.records[0]["id"], second.records[0]["id"]}
        assert len(ids) == 2

    def test_null_recorder_is_inert(self):
        assert not NULL_SPANS.enabled
        with NULL_SPANS.span("anything"):
            pass
        assert NULL_SPANS.export() == []
        assert NULL_SPANS.flush() == 0
        assert NULL_SPANS.context() is None

    def test_recorder_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SPANS", raising=False)
        assert not spans_enabled()
        assert recorder_from_env() is NULL_SPANS
        monkeypatch.setenv("REPRO_SPANS", "1")
        assert spans_enabled()
        assert recorder_from_env().path is None
        path = tmp_path / "spans.jsonl"
        monkeypatch.setenv("REPRO_SPANS", str(path))
        recorder = recorder_from_env()
        assert recorder.path == str(path)


class TestTreeShapeDeterminism:
    """The acceptance property: the span tree is a deterministic function
    of the run, not of worker scheduling."""

    def test_serial_vs_sharded_shapes_match(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "1")
        _, serial = run_sampled(1)
        _, sharded2 = run_sampled(2)
        _, sharded4 = run_sampled(4)
        shape1 = span_tree_shape(serial.spans, collapse=COLLAPSE)
        shape2 = span_tree_shape(sharded2.spans, collapse=COLLAPSE)
        shape4 = span_tree_shape(sharded4.spans, collapse=COLLAPSE)
        assert shape1 == shape2 == shape4
        # The uncollapsed sharded tree keeps its two-phase structure.
        raw = span_tree_shape(sharded2.spans)
        assert raw != shape1

    def test_serial_tree_names_the_pipeline(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "1")
        _, snapshot = run_sampled(1)
        roots = build_span_tree(snapshot.spans)
        assert [node["name"] for node in roots] == ["run"]
        child_names = {child["name"] for child in roots[0]["children"]}
        assert "cluster 0" in child_names
        cluster = next(child for child in roots[0]["children"]
                       if child["name"] == "cluster 0")
        phases = {grand["name"] for grand in cluster["children"]}
        assert {"cold_skip", "reconstruct", "hot_sim"} <= phases

    def test_spans_off_is_bit_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPANS", raising=False)
        plain, plain_snap = run_sampled(1)
        monkeypatch.setenv("REPRO_SPANS", "1")
        traced, traced_snap = run_sampled(1)
        assert plain.cluster_ipcs == traced.cluster_ipcs
        assert plain.estimate.mean == traced.estimate.mean
        assert plain_snap.spans == []
        assert traced_snap.spans


class TestChromeExport:
    def test_export_passes_checked_in_schema(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "1")
        _, snapshot = run_sampled(2)
        payload = to_chrome_trace(snapshot.spans)
        assert validate_chrome_trace(payload) == []
        assert check_lane_nesting(payload) == []

    def test_schema_constant_matches_checked_in_file(self):
        with open("docs/schemas/chrome-trace.schema.json") as fh:
            checked_in = json.load(fh)
        assert checked_in == CHROME_TRACE_SCHEMA

    def test_counters_become_counter_events(self):
        recorder = SpanRecorder()
        with recorder.span("run"):
            recorder.counter("log.stored_records", 7)
        payload = to_chrome_trace(recorder.export())
        phases = [event["ph"] for event in payload["traceEvents"]]
        assert "X" in phases and "C" in phases and "M" in phases
        counter = next(event for event in payload["traceEvents"]
                       if event["ph"] == "C")
        assert counter["args"]["value"] == 7

    def test_validator_rejects_malformed_payloads(self):
        assert validate_chrome_trace({"traceEvents": "nope"})
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 1, "name": "x"}]}
        )
        assert validate_chrome_trace([]) != []

    def test_lane_nesting_flags_straddling_span(self):
        events = [
            {"ph": "X", "pid": 1, "tid": 1, "name": "a", "ts": 0, "dur": 10},
            {"ph": "X", "pid": 1, "tid": 1, "name": "b", "ts": 5, "dur": 10},
        ]
        errors = check_lane_nesting({"traceEvents": events})
        assert errors and "straddles" in errors[0]

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        recorder = SpanRecorder()
        with recorder.span("run"):
            pass
        path = tmp_path / "trace.chrome.json"
        count = write_chrome_trace(recorder.export(), str(path))
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert validate_chrome_trace(payload) == []


class TestTruncatedTail:
    """An interrupted run may cut the final JSONL line mid-record; reads
    recover everything before it instead of raising."""

    def test_truncated_final_line_is_skipped_with_warning(
            self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        write_trace([{"type": "cluster", "index": 0},
                     {"type": "cluster", "index": 1}], str(path))
        with open(path, "a") as fh:
            fh.write('{"type": "cluster", "ind')  # interrupted write
        records = read_trace(str(path))
        assert [record["index"] for record in records] == [0, 1]
        err = capsys.readouterr().err
        assert "truncated final record" in err
        assert str(path) in err

    def test_malformed_middle_line_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "cluster"}\nnot json\n{"type": "span"}\n')
        with pytest.raises(json.JSONDecodeError):
            read_trace(str(path))

    def test_read_spans_shares_the_tolerance(self, tmp_path, capsys):
        path = tmp_path / "spans.jsonl"
        recorder = SpanRecorder(path=str(path))
        with recorder.span("run"):
            pass
        recorder.flush()
        with open(path, "a") as fh:
            fh.write('{"type": "span", "id": "1:1')
        assert [r["name"] for r in read_spans(str(path))] == ["run"]
        assert "truncated final record" in capsys.readouterr().err


class TestEventsFirehose:
    def test_run_emits_cluster_and_run_events(self, monkeypatch, tmp_path):
        path = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_EVENTS", str(path))
        run_sampled(1)
        events = read_events(str(path))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        clusters = [event for event in events if event["event"] == "cluster"]
        assert len(clusters) == CI.regimen().num_clusters
        assert all("wall_seconds" in event for event in clusters)

    def test_events_stamp_ambient_run_id(self, monkeypatch, tmp_path):
        path = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_EVENTS", str(path))
        monkeypatch.setenv("REPRO_RUN_ID", "rfirehose1")
        run_sampled(1)
        events = read_events(str(path))
        assert events and all(
            event["run_id"] == "rfirehose1" for event in events)

    def test_no_run_id_field_without_ambient_id(self, monkeypatch,
                                                tmp_path):
        path = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_EVENTS", str(path))
        monkeypatch.delenv("REPRO_RUN_ID", raising=False)
        run_sampled(1)
        assert all("run_id" not in event
                   for event in read_events(str(path)))

    def test_failed_append_warns_once_per_path(self, tmp_path, capsys):
        from repro.telemetry.events import emit_event

        # A directory path makes every append raise OSError; the
        # firehose must warn on the first failure and then go quiet.
        dead = tmp_path / "not-a-file"
        dead.mkdir()
        emit_event(str(dead), "cluster", index=0)
        emit_event(str(dead), "cluster", index=1)
        err = capsys.readouterr().err
        assert err.count("cannot append events") == 1
        assert str(dead) in err


class TestRunReport:
    def test_report_renders_spans_audit_and_trajectory(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "1")
        _, snapshot = run_sampled(2)
        audit = {
            "schema": "repro-audit-v1",
            "summary": [{"workload": "ammp", "method": "S$BP",
                         "clusters": 2, "cold_start_bias": 0.01,
                         "sampling_bias": -0.002}],
            "clusters": [
                {"workload": "ammp", "method": "S$BP", "cluster": 0,
                 "cold_start_error": 0.01, "sampling_error": -0.001,
                 "ipc": 1.0},
                {"workload": "ammp", "method": "S$BP", "cluster": 1,
                 "cold_start_error": -0.02, "sampling_error": 0.003,
                 "ipc": 1.1},
            ],
        }
        trajectory = {"schema": "repro-trajectory-v1",
                      "benches": {"pr7": {"bench": "span_overhead",
                                          "scale": "bench",
                                          "metrics": {"ratio": 1.0}}}}
        html = render_report(snapshot.spans, audit=audit,
                             trajectory=trajectory)
        assert "<svg" in html
        assert "Span timeline" in html
        assert "Accuracy audit" in html
        assert "Benchmark trajectory" in html
        assert "span_overhead" in html

    def test_report_degrades_without_inputs(self):
        html = render_report([])
        assert "no spans recorded" in html


class TestLiveProgress:
    def test_streams_rate_and_eta(self):
        from io import StringIO
        from repro.harness.parallel import CellProgress

        stream = StringIO()
        progress = LiveProgress(stream=stream)
        progress(CellProgress(completed=1, total=4, kind="cell",
                              workload_name="ammp", method_name="S$BP",
                              wall_seconds=0.5, cached=False))
        progress(CellProgress(completed=4, total=4, kind="cell",
                              workload_name="ammp", method_name="None",
                              wall_seconds=0.1, cached=True))
        out = stream.getvalue()
        assert "[1/4]" in out and "[4/4]" in out
        assert "cells/s" in out
        assert "ETA" in out
        assert "(cache)" in out


class TestCLI:
    def test_matrix_parser_accepts_progress_and_spans(self):
        args = build_parser().parse_args(
            ["matrix", "--progress", "--spans", "spans.jsonl"])
        assert args.progress
        assert args.spans == "spans.jsonl"

    def test_trace_export_parser(self):
        args = build_parser().parse_args(
            ["trace", "export", "spans.jsonl", "--format", "jsonl"])
        assert args.command == "trace"
        assert args.action == "export"
        assert args.format == "jsonl"

    def test_trace_export_writes_validated_chrome_json(
            self, tmp_path, capsys):
        spans_path = tmp_path / "spans.jsonl"
        recorder = SpanRecorder(path=str(spans_path))
        with recorder.span("run"):
            with recorder.span("cluster 0", cluster=0):
                recorder.counter("log.stored_records", 3)
        recorder.flush()
        out_path = tmp_path / "trace.chrome.json"
        assert main(["trace", "export", str(spans_path),
                     "-o", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert "perfetto" in capsys.readouterr().out

    def test_report_command_writes_html(self, tmp_path, capsys):
        spans_path = tmp_path / "spans.jsonl"
        recorder = SpanRecorder(path=str(spans_path))
        with recorder.span("run"):
            pass
        recorder.flush()
        out_path = tmp_path / "report.html"
        assert main(["report", "--spans", str(spans_path),
                     "-o", str(out_path)]) == 0
        html = out_path.read_text()
        assert "<svg" in html and "Span timeline" in html
        assert "report written" in capsys.readouterr().out

    def test_metrics_command_renders_exposition_from_trace(
            self, tmp_path, capsys, monkeypatch):
        from repro.telemetry import parse_exposition

        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        trace_path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace_path))
        assert main(["sample", "ammp", "--method", "rsr"]) == 0
        capsys.readouterr()
        out_path = tmp_path / "metrics.prom"
        assert main(["metrics", str(trace_path),
                     "-o", str(out_path)]) == 0
        assert "written to" in capsys.readouterr().out
        families = parse_exposition(out_path.read_text())
        clusters = families["repro_clusters_total"]["samples"]
        assert clusters[0][1]["workload"] == "ammp"
        assert clusters[0][2] == CI.regimen().num_clusters
        assert families["repro_cluster_wall_seconds"]["kind"] == \
            "histogram"
        # The CLI mints one run_id per invocation; the trace records
        # carry it, so the offline exposition grows one info series.
        run_ids = [labels["run_id"] for _, labels, _
                   in families["repro_run_info"]["samples"]]
        assert len(run_ids) == 1 and run_ids[0].startswith("r")

    def test_metrics_command_warns_on_empty_trace(self, tmp_path,
                                                  capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["metrics", str(empty)]) == 0
        captured = capsys.readouterr()
        assert "no records" in captured.err
        assert captured.out == ""

    def test_profile_with_no_clusters_prints_readable_notice(
            self, capsys, monkeypatch):
        import repro.telemetry as telemetry_pkg

        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        monkeypatch.setattr(telemetry_pkg, "merge_snapshots",
                            lambda snapshots: None)
        assert main(["profile", "ammp", "--method", "None"]) == 0
        out = capsys.readouterr().out
        assert "no clusters recorded" in out
        assert "ammp profile" in out
