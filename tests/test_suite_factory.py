"""Unit tests for the Table 2 method-suite factory."""

import pytest

from repro.core import ReverseStateReconstruction
from repro.warmup import (
    FixedPeriodWarmup,
    NoWarmup,
    SmartsWarmup,
    make_method,
    paper_method_names,
    paper_method_suite,
)


class TestSuite:
    def test_sixteen_configurations(self):
        assert len(paper_method_suite()) == 16

    def test_names_match_table2(self):
        expected = [
            "None",
            "FP (20%)", "FP (40%)", "FP (80%)",
            "S$", "SBP", "S$BP",
            "R$ (20%)", "R$ (40%)", "R$ (80%)", "R$ (100%)",
            "RBP",
            "R$BP (20%)", "R$BP (40%)", "R$BP (80%)", "R$BP (100%)",
        ]
        assert paper_method_names() == expected

    def test_fresh_instances_each_call(self):
        first = paper_method_suite()
        second = paper_method_suite()
        assert all(a is not b for a, b in zip(first, second))

    def test_types(self):
        suite = {method.name: method for method in paper_method_suite()}
        assert isinstance(suite["None"], NoWarmup)
        assert isinstance(suite["FP (20%)"], FixedPeriodWarmup)
        assert isinstance(suite["S$BP"], SmartsWarmup)
        assert isinstance(suite["R$BP (20%)"], ReverseStateReconstruction)

    def test_selective_warm_flags(self):
        suite = {method.name: method for method in paper_method_suite()}
        assert suite["S$"].warms_cache and not suite["S$"].warms_predictor
        assert suite["SBP"].warms_predictor and not suite["SBP"].warms_cache
        assert suite["R$ (40%)"].warms_cache and \
            not suite["R$ (40%)"].warms_predictor
        assert suite["RBP"].warms_predictor and not suite["RBP"].warms_cache

    def test_reverse_fractions(self):
        suite = {method.name: method for method in paper_method_suite()}
        assert suite["R$BP (20%)"].fraction == pytest.approx(0.2)
        assert suite["R$BP (100%)"].fraction == pytest.approx(1.0)
        assert suite["RBP"].fraction == pytest.approx(1.0)


class TestMakeMethod:
    def test_builds_by_name(self):
        method = make_method("R$BP (40%)")
        assert isinstance(method, ReverseStateReconstruction)
        assert method.fraction == pytest.approx(0.4)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown method"):
            make_method("bogus")

    def test_every_listed_name_buildable(self):
        for name in paper_method_names():
            assert make_method(name).name == name
