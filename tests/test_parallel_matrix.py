"""Tests for the parallel experiment engine (harness/parallel.py).

The load-bearing property is serial/parallel equivalence: the engine
must reassemble exactly the grid the serial ``run_matrix`` produces —
same regimen seed, same cluster IPCs, bit-identical estimates — whether
cells ran in a process pool, in-process (``jobs=1``), or through one of
the graceful fallbacks (unpicklable factory, pool unavailable).
"""

from __future__ import annotations

import pytest

from repro.harness import (
    SCALES,
    ResultCache,
    execute_matrix,
    run_matrix,
)
from repro.harness import executor as executor_module
from repro.harness.parallel import CellProgress
from repro.warmup import make_method

CI = SCALES["ci"]
WORKLOADS = ("ammp", "gcc")
METHOD_NAMES = ("None", "S$BP", "R$BP (20%)")


def small_suite():
    """A picklable module-level factory covering all three method families."""
    return [make_method(name) for name in METHOD_NAMES]


def assert_grids_identical(expected, actual):
    assert list(expected) == list(actual)
    for workload_name in expected:
        left = expected[workload_name]
        right = actual[workload_name]
        assert left.true_run == right.true_run
        assert list(left.outcomes) == list(right.outcomes)
        for method_name in left.outcomes:
            a = left.outcomes[method_name]
            b = right.outcomes[method_name]
            assert a.run.cluster_ipcs == b.run.cluster_ipcs
            assert a.run.estimate == b.run.estimate
            assert a.run.regimen == b.run.regimen
            assert a.true_ipc == b.true_ipc
            assert a.relative_error == b.relative_error
            assert a.passes_confidence == b.passes_confidence
            assert a.work_units == b.work_units


@pytest.fixture(scope="module")
def serial_grid():
    return run_matrix(small_suite, workload_names=WORKLOADS, scale=CI)


class TestEquivalence:
    def test_pool_matches_serial(self, serial_grid):
        parallel_grid = execute_matrix(
            small_suite, workload_names=WORKLOADS, scale=CI, jobs=2,
        )
        assert_grids_identical(serial_grid, parallel_grid)

    def test_jobs_1_runs_in_process_and_matches(self, serial_grid,
                                                monkeypatch):
        def no_pool(*args, **kwargs):  # jobs=1 must never build a pool
            raise AssertionError("ProcessPoolExecutor used with jobs=1")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", no_pool)
        grid = execute_matrix(
            small_suite, workload_names=WORKLOADS, scale=CI, jobs=1,
        )
        assert_grids_identical(serial_grid, grid)

    def test_unpicklable_factory_falls_back_to_serial(self, serial_grid):
        factory = lambda: small_suite()  # noqa: E731 — deliberately unpicklable
        grid = execute_matrix(
            factory, workload_names=WORKLOADS, scale=CI, jobs=2,
        )
        assert_grids_identical(serial_grid, grid)

    def test_pool_unavailable_falls_back_to_serial(self, serial_grid,
                                                   monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no process pools on this platform")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor",
                            broken_pool)
        grid = execute_matrix(
            small_suite, workload_names=WORKLOADS, scale=CI, jobs=4,
        )
        assert_grids_identical(serial_grid, grid)


class TestProgress:
    def test_progress_events_cover_every_task(self):
        events: list[CellProgress] = []
        execute_matrix(
            small_suite, workload_names=WORKLOADS, scale=CI, jobs=1,
            progress=events.append,
        )
        total = len(WORKLOADS) * (1 + len(METHOD_NAMES))
        assert len(events) == total
        assert [event.completed for event in events] == \
            list(range(1, total + 1))
        assert all(event.total == total for event in events)
        assert sum(event.kind == "true" for event in events) == len(WORKLOADS)
        cell_events = [event for event in events if event.kind == "cell"]
        assert {event.method_name for event in cell_events} == \
            set(METHOD_NAMES)
        assert all(event.cost is not None for event in cell_events)
        assert not any(event.cached for event in events)
        assert all("x" in event.describe() for event in cell_events)

    def test_cached_events_flagged(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        execute_matrix(
            small_suite, workload_names=("ammp",), scale=CI, jobs=1,
            cache=cache,
        )
        events: list[CellProgress] = []
        execute_matrix(
            small_suite, workload_names=("ammp",), scale=CI, jobs=1,
            cache=cache, progress=events.append,
        )
        assert events and all(event.cached for event in events)
        assert all(event.wall_seconds == 0.0 for event in events)
        assert all("cache" in event.describe() for event in events)


class TestCachedExecution:
    def test_second_run_is_pure_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = execute_matrix(
            small_suite, workload_names=("ammp",), scale=CI, jobs=1,
            cache=cache,
        )
        tasks = 1 + len(METHOD_NAMES)
        assert cache.stats.misses == tasks
        assert cache.stats.writes == tasks
        warm = execute_matrix(
            small_suite, workload_names=("ammp",), scale=CI, jobs=1,
            cache=cache,
        )
        assert cache.stats.hits == tasks
        assert_grids_identical(cold, warm)

    def test_scale_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        execute_matrix(
            small_suite, workload_names=("ammp",), scale=CI, jobs=1,
            cache=cache,
        )
        other = SCALES["ci"].__class__(
            "ci-reseeded", CI.total_instructions, CI.num_clusters,
            CI.cluster_size, seed=CI.seed + 1,
            warmup_prefix=CI.warmup_prefix,
        )
        hits_before = cache.stats.hits
        execute_matrix(
            small_suite, workload_names=("ammp",), scale=other, jobs=1,
            cache=cache,
        )
        assert cache.stats.hits == hits_before  # every key differs
