"""Tests for the Variance SimPoint extension (random, CI-capable points)."""

import pytest

from repro.simpoint import (
    run_variance_simpoints,
    select_variance_simpoints,
)
from repro.warmup import SmartsWarmup
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload("vpr")


class TestSelection:
    def test_random_selection_counts(self, workload):
        selection = select_variance_simpoints(
            workload, 40_000, 2_000, num_points=8, stratify=False,
        )
        assert len(selection.interval_indices) == 8
        assert len(set(selection.interval_indices)) == 8  # no repeats
        assert all(0 <= i < 20 for i in selection.interval_indices)

    def test_stratified_selection(self, workload):
        selection = select_variance_simpoints(
            workload, 40_000, 2_000, num_points=8, stratify=True,
        )
        assert selection.stratified
        assert 1 <= len(selection.interval_indices) <= 8

    def test_points_capped_by_intervals(self, workload):
        selection = select_variance_simpoints(
            workload, 10_000, 2_000, num_points=50, stratify=False,
        )
        assert len(selection.interval_indices) == 5

    def test_deterministic_for_seed(self, workload):
        a = select_variance_simpoints(workload, 40_000, 2_000, 6, seed=4,
                                      stratify=False)
        b = select_variance_simpoints(workload, 40_000, 2_000, 6, seed=4,
                                      stratify=False)
        assert a.interval_indices == b.interval_indices

    def test_starts_sorted_and_aligned(self, workload):
        selection = select_variance_simpoints(
            workload, 40_000, 2_000, num_points=6, stratify=False,
        )
        starts = selection.starts()
        assert starts == sorted(starts)
        assert all(start % 2_000 == 0 for start in starts)

    def test_validation(self, workload):
        with pytest.raises(ValueError):
            select_variance_simpoints(workload, 100, 2_000, 4)


class TestRun:
    def test_estimate_with_confidence_interval(self, workload):
        selection = select_variance_simpoints(
            workload, 40_000, 1_500, num_points=6, stratify=False,
        )
        result = run_variance_simpoints(workload, selection)
        assert len(result.point_ipcs) == 6
        assert result.estimate.num_clusters == 6
        # Unlike classic SimPoint, the estimate carries error bounds.
        assert result.estimate.error_bound >= 0
        assert result.passes_confidence_test(result.ipc)

    def test_with_warmup(self, workload):
        selection = select_variance_simpoints(
            workload, 40_000, 1_500, num_points=5, stratify=False,
        )
        result = run_variance_simpoints(
            workload, selection, warmup=SmartsWarmup(),
        )
        assert result.cost.cache_updates > 0
        assert result.extra["stratified"] is False

    def test_relative_error_api(self, workload):
        selection = select_variance_simpoints(
            workload, 30_000, 1_500, num_points=4, stratify=False,
        )
        result = run_variance_simpoints(workload, selection)
        assert result.relative_error(result.ipc) == 0.0
