"""Unit tests for the two-level memory hierarchy.

The central invariant: :meth:`warm_access` (used by SMARTS-style warming)
must leave the caches in exactly the state :meth:`timed_access` (used by
detailed simulation) produces for the same reference stream.
"""

import numpy as np
import pytest

from repro.cache import MemoryHierarchy, paper_hierarchy_config


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(paper_hierarchy_config(scale=16))


class TestLatencies:
    def test_l1_hit_is_fast(self, hierarchy):
        hierarchy.timed_access(0x1000, False, False, 0)
        latency = hierarchy.timed_access(0x1000, False, False, 1000)
        assert latency == hierarchy.l1d.config.hit_latency

    def test_l2_hit_slower_than_l1_hit(self, hierarchy):
        hierarchy.timed_access(0x1000, False, False, 0)
        # Evict from tiny L1D but not from L2.
        sets = hierarchy.l1d.num_sets
        assoc = hierarchy.l1d.associativity
        stride = sets * 64
        for way in range(assoc):
            hierarchy.timed_access(0x100000 + way * stride, False, False, 0)
        latency = hierarchy.timed_access(0x1000, False, False, 10_000)
        assert latency > hierarchy.l1d.config.hit_latency
        miss_latency = hierarchy.timed_access(0x900000, False, False, 20_000)
        assert miss_latency > latency  # full miss costs more than L2 hit

    def test_memory_miss_includes_dram_latency(self, hierarchy):
        latency = hierarchy.timed_access(0x5000, False, False, 0)
        assert latency >= hierarchy.config.memory_latency

    def test_wtna_store_completes_at_bus_acceptance(self, hierarchy):
        latency = hierarchy.timed_access(0x7000, True, False, 0)
        # Store latency is bus acceptance, far below a full miss round trip.
        assert latency < hierarchy.config.memory_latency

    def test_instruction_accesses_use_l1i(self, hierarchy):
        hierarchy.timed_access(0x400000, False, True, 0)
        assert hierarchy.l1i.stats.accesses == 1
        assert hierarchy.l1d.stats.accesses == 0


class TestBusCoupling:
    def test_misses_occupy_buses(self, hierarchy):
        hierarchy.timed_access(0x1000, False, False, 0)
        assert hierarchy.l1_bus.transfers > 0
        assert hierarchy.l2_bus.transfers > 0

    def test_contention_raises_latency(self, hierarchy):
        # Two simultaneous misses: the second queues on the buses.
        first = hierarchy.timed_access(0x10000, False, False, 0)
        second = hierarchy.timed_access(0x20000, False, False, 0)
        assert second > first


class TestWarmEquivalence:
    """State warmed functionally == state from timed simulation."""

    def _random_stream(self, seed, count=4000):
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, 1 << 20, size=count) & ~0x7
        writes = rng.random(count) < 0.3
        instr = rng.random(count) < 0.2
        return [
            (int(a), bool(w), bool(i))
            for a, w, i in zip(addresses, writes, instr)
        ]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_warm_matches_timed_state(self, seed):
        warm = MemoryHierarchy(paper_hierarchy_config(scale=16))
        timed = MemoryHierarchy(paper_hierarchy_config(scale=16))
        now = 0
        for address, is_write, is_instr in self._random_stream(seed):
            warm.warm_access(address, is_write, is_instr)
            now += timed.timed_access(address, is_write, is_instr, now)
        for cache_name in ("l1i", "l1d", "l2"):
            warm_cache = getattr(warm, cache_name)
            timed_cache = getattr(timed, cache_name)
            assert warm_cache.state_fingerprint() == \
                timed_cache.state_fingerprint(), cache_name

    def test_warm_counts_updates(self):
        hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=16))
        hierarchy.warm_access(0x1000, False, False)
        assert hierarchy.total_updates() >= 2  # L1D + L2


class TestMaintenance:
    def test_reset(self, hierarchy):
        hierarchy.timed_access(0x1000, False, False, 0)
        hierarchy.reset()
        assert hierarchy.l1d.stats.accesses == 0
        assert hierarchy.memory_accesses == 0
        assert not hierarchy.l1d.probe(0x1000)

    def test_reset_stats_keeps_contents(self, hierarchy):
        hierarchy.timed_access(0x1000, False, False, 0)
        hierarchy.reset_stats()
        assert hierarchy.l1d.stats.accesses == 0
        assert hierarchy.l1d.probe(0x1000)

    def test_caches_accessor(self, hierarchy):
        l1i, l1d, l2 = hierarchy.caches()
        assert l1i is hierarchy.l1i
        assert l1d is hierarchy.l1d
        assert l2 is hierarchy.l2
