"""Service and API-facade tests: submit → poll → result round trips.

Covers the acceptance bar for the simulation service: a job submitted
over HTTP produces exactly the payload an inline
:func:`repro.api.execute_request` call produces; a repeated request is
served from the content-addressed result cache without re-running
anything (asserted via the service counters); tenants exceeding their
pending-job quota get HTTP 429; and malformed requests get readable
400s.  Also covers the `RunRequest`/`RunResult` facade itself and the
deprecation shim.
"""

import json

import pytest

from repro.api import (
    RunRequest,
    RunResult,
    execute_request,
    gather,
    submit,
)
from repro.harness.options import RunOptions
from repro.service import (
    QuotaExceeded,
    ServiceClient,
    ServiceError,
    SimulationService,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")


def _service(tmp_path, **kwargs):
    kwargs.setdefault("options", RunOptions(scale="ci"))
    kwargs.setdefault("executor", "inprocess")
    kwargs.setdefault("cache", str(tmp_path / "cache"))
    kwargs.setdefault("port", 0)
    return SimulationService(**kwargs)


SAMPLE = RunRequest(kind="sample", workloads=("gcc",), methods=("rsr",),
                    design="ci")


class TestRunRequest:
    def test_payload_round_trip(self):
        request = RunRequest(kind="matrix", workloads=("gcc", "twolf"),
                             methods=("rsr", "smarts"), design="ci",
                             jobs=2)
        clone = RunRequest.from_payload(
            json.loads(json.dumps(request.to_payload())))
        assert clone == request
        assert clone.fingerprint() == request.fingerprint()

    def test_fingerprint_ignores_execution_knobs(self):
        base = RunRequest(kind="sample", workloads=("gcc",), design="ci")
        tuned = RunRequest(kind="sample", workloads=("gcc",), design="ci",
                           jobs=8, cluster_jobs=4)
        assert base.fingerprint() == tuned.fingerprint()

    def test_fingerprint_differs_by_content(self):
        a = RunRequest(kind="sample", workloads=("gcc",), design="ci")
        b = RunRequest(kind="sample", workloads=("twolf",), design="ci")
        assert a.fingerprint() != b.fingerprint()

    @pytest.mark.parametrize("bad", [
        {"kind": "explode"},
        {"workloads": ["nope"]},
        {"methods": ["not-a-method"]},
        {"design": "galactic"},
        {"source": "sideways"},
        {"cluster_jobs": -1},
        {"jobs": -2},
        {"surprise": 1},
    ])
    def test_bad_payloads_raise_readably(self, bad):
        with pytest.raises(ValueError):
            RunRequest.from_payload(bad)

    def test_design_defaults_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert RunRequest(kind="sample").design == "ci"

    def test_default_suites(self):
        assert RunRequest(kind="sample", design="ci").resolved_methods() \
            == ("S$BP", "R$BP (100%)")
        assert len(RunRequest(kind="matrix",
                              design="ci").resolved_methods()) == 16


class TestExecuteRequest:
    def test_cache_read_through(self, tmp_path):
        first = execute_request(SAMPLE, cache=str(tmp_path))
        second = execute_request(SAMPLE, cache=str(tmp_path))
        assert not first.cached and second.cached
        assert second.payload == first.payload

    def test_payload_is_deterministic_across_backends(self, tmp_path):
        request = RunRequest(kind="matrix", workloads=("gcc",),
                             methods=("rsr", "smarts"), design="ci")
        payloads = [
            execute_request(request, executor=name, cache="off").payload
            for name in ("inprocess", "threads")
        ]
        blobs = {json.dumps(p, sort_keys=True) for p in payloads}
        assert len(blobs) == 1

    def test_audit_payload_has_reports(self):
        request = RunRequest(kind="audit", workloads=("gcc",),
                             methods=("rsr",), design="ci", source="raw")
        result = execute_request(request, cache="off")
        report = result.payload["reports"]["gcc"]
        assert {"summary", "clusters"} <= set(report)

    def test_submit_gather_matches_inline(self):
        inline = execute_request(SAMPLE, cache="off")
        handles = [submit(SAMPLE, cache="off"),
                   submit(SAMPLE, cache="off")]
        outcomes = gather(handles, executor="threads")
        assert [o.payload for o in outcomes] == [inline.payload] * 2

    def test_handle_is_lazy_until_needed(self):
        handle = submit(SAMPLE, cache="off")
        assert not handle.done()
        result = handle.result()
        assert handle.done()
        assert isinstance(result, RunResult)


class TestServiceRoundTrip:
    def test_result_matches_inline_exactly(self, tmp_path):
        inline = execute_request(SAMPLE, cache="off")
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            remote = client.run(SAMPLE)
        assert remote.payload == inline.payload
        assert remote.request == SAMPLE
        assert not remote.cached

    def test_repeat_served_from_cache_without_rerun(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            first = client.run(SAMPLE)
            second = client.run(SAMPLE)
            stats = client.stats()
        assert not first.cached and second.cached
        assert second.payload == first.payload
        # The counters prove the second job never re-entered execution.
        assert stats["counters"]["executed"] == 1
        assert stats["counters"]["cache_hits"] == 1
        assert stats["counters"]["jobs_completed"] == 2

    def test_job_status_progression(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            job_id = client.submit(SAMPLE)
            client.result(job_id)
            status = client.status(job_id)
        assert status["state"] == "done"
        assert status["job_id"] == job_id
        assert status["finished_at"] >= status["submitted_at"]

    def test_health_stats_executors(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            assert client.health() == {"status": "ok"}
            assert "pool" in [e["name"] for e in client.executors()]
            stats = client.stats()
        assert stats["executor"] == "inprocess"
        assert set(stats["jobs"]) == {"queued", "running", "done",
                                      "failed"}


class TestServiceRejections:
    def test_quota_rejection_is_429(self, tmp_path):
        # Unstarted worker: jobs stay queued, so the quota fills.
        service = _service(tmp_path, max_pending_per_tenant=2)
        for _ in range(2):
            service.submit("tenant-a", SAMPLE)
        with pytest.raises(QuotaExceeded):
            service.submit("tenant-a", SAMPLE)
        # Other tenants are unaffected.
        service.submit("tenant-b", SAMPLE)
        assert service.store.pending_count("tenant-a") == 2

    def test_quota_rejection_over_http(self, tmp_path):
        with _service(tmp_path, max_pending_per_tenant=1) as service:
            client = ServiceClient(service.url)
            # A matrix job holds the worker long enough for a second
            # submission to collide with the quota.
            slow = RunRequest(kind="matrix", workloads=("gcc", "twolf"),
                              methods=("rsr", "smarts"), design="ci")
            job_id = client.submit(slow, tenant="quota-tenant")
            with pytest.raises(ServiceError) as excinfo:
                client.submit(SAMPLE, tenant="quota-tenant")
            assert excinfo.value.status == 429
            stats = client.stats()
            assert stats["counters"]["quota_rejections"] == 1
            client.result(job_id)  # drain before shutdown

    def test_malformed_request_is_400(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceError) as excinfo:
                client._call("/jobs", {"request": {"kind": "explode"}},
                             expect=(202,))
        assert excinfo.value.status == 400
        assert "explode" in str(excinfo.value)

    def test_unknown_job_is_404(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceError) as excinfo:
                client.status("job-999999")
        assert excinfo.value.status == 404

    def test_unknown_path_is_404(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceError) as excinfo:
                client._call("/teapot")
        assert excinfo.value.status == 404

    def test_failed_job_reports_error(self, tmp_path, monkeypatch):
        # Force a post-validation execution failure; the worker must
        # survive it and the job must surface the error over HTTP.
        import repro.service.server as server_module

        def explode(request, **kwargs):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(server_module, "execute_request", explode)
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            job_id = client.submit(SAMPLE)
            with pytest.raises(ServiceError) as excinfo:
                client.result(job_id, timeout=30)
        assert excinfo.value.status == 500
        assert "synthetic failure" in str(excinfo.value)


class TestRunOptions:
    def test_reads_and_validates_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        monkeypatch.setenv("REPRO_MATRIX_JOBS", "3")
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")
        monkeypatch.setenv("REPRO_AUDIT", "1")
        options = RunOptions.from_env()
        assert options.scale == "ci"
        assert options.matrix_jobs == 3
        assert options.executor == "threads"
        assert options.audit is True

    @pytest.mark.parametrize("name,value,fragment", [
        ("REPRO_EXPERIMENT_SCALE", "galactic", "REPRO_EXPERIMENT_SCALE"),
        ("REPRO_MATRIX_JOBS", "many", "REPRO_MATRIX_JOBS"),
        ("REPRO_CLUSTER_JOBS", "-2", "REPRO_CLUSTER_JOBS"),
        ("REPRO_EXECUTOR", "warp", "unknown executor"),
        ("REPRO_AUDIT", "maybe", "REPRO_AUDIT"),
        ("REPRO_TELEMETRY", "kinda", "REPRO_TELEMETRY"),
        ("REPRO_LOG_COMPACTION", "zip", "REPRO_LOG_COMPACTION"),
        ("REPRO_BATCH_CORE", "turbo", "REPRO_BATCH_CORE"),
    ])
    def test_bad_values_name_the_variable(self, monkeypatch, name, value,
                                          fragment):
        monkeypatch.setenv(name, value)
        with pytest.raises(ValueError, match=fragment):
            RunOptions.from_env()

    def test_overrides_win_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "bench")
        options = RunOptions.from_env(scale="ci", matrix_jobs=2)
        assert options.scale == "ci"
        assert options.matrix_jobs == 2

    def test_none_override_keeps_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert RunOptions.from_env(scale=None).scale == "ci"

    def test_batch_core_scalar_spelling(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CORE", "scalar")
        assert RunOptions.from_env().batch_core is False

    def test_apply_exports_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        import os

        options = RunOptions(scale="ci", telemetry=True, audit=False)
        with options.apply():
            assert os.environ["REPRO_EXPERIMENT_SCALE"] == "ci"
            assert os.environ["REPRO_TELEMETRY"] == "1"
            # apply() removes strays the options leave unset.
            assert "REPRO_AUDIT" not in os.environ
        assert os.environ["REPRO_AUDIT"] == "1"
        assert "REPRO_TELEMETRY" not in os.environ

    def test_resolved_jobs(self):
        options = RunOptions(scale="ci", matrix_jobs=5, cluster_jobs=None)
        assert options.resolved_matrix_jobs() == 5
        assert options.resolved_cluster_jobs() == 1
        zero = RunOptions(scale="ci", matrix_jobs=0, cluster_jobs=0)
        assert zero.resolved_matrix_jobs() >= 1
        assert zero.resolved_cluster_jobs() >= 1

    def test_cli_exit_2_on_bad_env(self, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_EXECUTOR", "warp")
        assert main(["workloads"]) == 2
        assert "unknown executor" in capsys.readouterr().err
