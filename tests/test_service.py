"""Service and API-facade tests: submit → poll → result round trips.

Covers the acceptance bar for the simulation service: a job submitted
over HTTP produces exactly the payload an inline
:func:`repro.api.execute_request` call produces; a repeated request is
served from the content-addressed result cache without re-running
anything (asserted via the service counters); tenants exceeding their
pending-job quota get HTTP 429; and malformed requests get readable
400s.  Also covers the `RunRequest`/`RunResult` facade itself and the
deprecation shim.
"""

import json
import threading

import pytest

from repro.api import (
    RunRequest,
    RunResult,
    execute_request,
    gather,
    submit,
)
from repro.harness.options import RunOptions
from repro.service import (
    QuotaExceeded,
    ServiceClient,
    ServiceError,
    SimulationService,
)
from repro.telemetry import parse_exposition

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")


def _service(tmp_path, **kwargs):
    kwargs.setdefault("options", RunOptions(scale="ci"))
    kwargs.setdefault("executor", "inprocess")
    kwargs.setdefault("cache", str(tmp_path / "cache"))
    kwargs.setdefault("port", 0)
    return SimulationService(**kwargs)


SAMPLE = RunRequest(kind="sample", workloads=("gcc",), methods=("rsr",),
                    design="ci")


class TestRunRequest:
    def test_payload_round_trip(self):
        request = RunRequest(kind="matrix", workloads=("gcc", "twolf"),
                             methods=("rsr", "smarts"), design="ci",
                             jobs=2)
        clone = RunRequest.from_payload(
            json.loads(json.dumps(request.to_payload())))
        assert clone == request
        assert clone.fingerprint() == request.fingerprint()

    def test_fingerprint_ignores_execution_knobs(self):
        base = RunRequest(kind="sample", workloads=("gcc",), design="ci")
        tuned = RunRequest(kind="sample", workloads=("gcc",), design="ci",
                           jobs=8, cluster_jobs=4)
        assert base.fingerprint() == tuned.fingerprint()

    def test_fingerprint_differs_by_content(self):
        a = RunRequest(kind="sample", workloads=("gcc",), design="ci")
        b = RunRequest(kind="sample", workloads=("twolf",), design="ci")
        assert a.fingerprint() != b.fingerprint()

    @pytest.mark.parametrize("bad", [
        {"kind": "explode"},
        {"workloads": ["nope"]},
        {"methods": ["not-a-method"]},
        {"design": "galactic"},
        {"source": "sideways"},
        {"cluster_jobs": -1},
        {"jobs": -2},
        {"surprise": 1},
    ])
    def test_bad_payloads_raise_readably(self, bad):
        with pytest.raises(ValueError):
            RunRequest.from_payload(bad)

    def test_design_defaults_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert RunRequest(kind="sample").design == "ci"

    def test_default_suites(self):
        assert RunRequest(kind="sample", design="ci").resolved_methods() \
            == ("S$BP", "R$BP (100%)")
        assert len(RunRequest(kind="matrix",
                              design="ci").resolved_methods()) == 16


class TestExecuteRequest:
    def test_cache_read_through(self, tmp_path):
        first = execute_request(SAMPLE, cache=str(tmp_path))
        second = execute_request(SAMPLE, cache=str(tmp_path))
        assert not first.cached and second.cached
        assert second.payload == first.payload

    def test_payload_is_deterministic_across_backends(self, tmp_path):
        request = RunRequest(kind="matrix", workloads=("gcc",),
                             methods=("rsr", "smarts"), design="ci")
        payloads = [
            execute_request(request, executor=name, cache="off").payload
            for name in ("inprocess", "threads")
        ]
        blobs = {json.dumps(p, sort_keys=True) for p in payloads}
        assert len(blobs) == 1

    def test_audit_payload_has_reports(self):
        request = RunRequest(kind="audit", workloads=("gcc",),
                             methods=("rsr",), design="ci", source="raw")
        result = execute_request(request, cache="off")
        report = result.payload["reports"]["gcc"]
        assert {"summary", "clusters"} <= set(report)

    def test_submit_gather_matches_inline(self):
        inline = execute_request(SAMPLE, cache="off")
        handles = [submit(SAMPLE, cache="off"),
                   submit(SAMPLE, cache="off")]
        outcomes = gather(handles, executor="threads")
        assert [o.payload for o in outcomes] == [inline.payload] * 2

    def test_handle_is_lazy_until_needed(self):
        handle = submit(SAMPLE, cache="off")
        assert not handle.done()
        result = handle.result()
        assert handle.done()
        assert isinstance(result, RunResult)


class TestServiceRoundTrip:
    def test_result_matches_inline_exactly(self, tmp_path):
        inline = execute_request(SAMPLE, cache="off")
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            remote = client.run(SAMPLE)
        assert remote.payload == inline.payload
        assert remote.request == SAMPLE
        assert not remote.cached

    def test_repeat_served_from_cache_without_rerun(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            first = client.run(SAMPLE)
            second = client.run(SAMPLE)
            stats = client.stats()
        assert not first.cached and second.cached
        assert second.payload == first.payload
        # The counters prove the second job never re-entered execution.
        assert stats["counters"]["executed"] == 1
        assert stats["counters"]["cache_hits"] == 1
        assert stats["counters"]["jobs_completed"] == 2

    def test_job_status_progression(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            job_id = client.submit(SAMPLE)
            client.result(job_id)
            status = client.status(job_id)
        assert status["state"] == "done"
        assert status["job_id"] == job_id
        assert status["finished_at"] >= status["submitted_at"]

    def test_health_stats_executors(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            health = client.health()
            assert "pool" in [e["name"] for e in client.executors()]
            stats = client.stats()
        assert health["status"] == "ok"
        assert health["version"]
        assert health["uptime_seconds"] >= 0
        assert health["queue_depth"] == 0
        assert stats["executor"] == "inprocess"
        assert set(stats["jobs"]) == {"queued", "running", "done",
                                      "failed"}


class TestServiceRejections:
    def test_quota_rejection_is_429(self, tmp_path):
        # Unstarted worker: jobs stay queued, so the quota fills.
        service = _service(tmp_path, max_pending_per_tenant=2)
        for _ in range(2):
            service.submit("tenant-a", SAMPLE)
        with pytest.raises(QuotaExceeded):
            service.submit("tenant-a", SAMPLE)
        # Other tenants are unaffected.
        service.submit("tenant-b", SAMPLE)
        assert service.store.pending_count("tenant-a") == 2

    def test_quota_rejection_over_http(self, tmp_path):
        with _service(tmp_path, max_pending_per_tenant=1) as service:
            client = ServiceClient(service.url)
            # A matrix job holds the worker long enough for a second
            # submission to collide with the quota.
            slow = RunRequest(kind="matrix", workloads=("gcc", "twolf"),
                              methods=("rsr", "smarts"), design="ci")
            job_id = client.submit(slow, tenant="quota-tenant")
            with pytest.raises(ServiceError) as excinfo:
                client.submit(SAMPLE, tenant="quota-tenant")
            assert excinfo.value.status == 429
            stats = client.stats()
            assert stats["counters"]["quota_rejections"] == 1
            client.result(job_id)  # drain before shutdown

    def test_malformed_request_is_400(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceError) as excinfo:
                client._call("/jobs", {"request": {"kind": "explode"}},
                             expect=(202,))
        assert excinfo.value.status == 400
        assert "explode" in str(excinfo.value)

    def test_unknown_job_is_404(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceError) as excinfo:
                client.status("job-999999")
        assert excinfo.value.status == 404

    def test_unknown_path_is_404(self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceError) as excinfo:
                client._call("/teapot")
        assert excinfo.value.status == 404

    def test_failed_job_reports_error(self, tmp_path, monkeypatch):
        # Force a post-validation execution failure; the worker must
        # survive it and the job must surface the error over HTTP.
        import repro.service.server as server_module

        def explode(request, **kwargs):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(server_module, "execute_request", explode)
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            job_id = client.submit(SAMPLE)
            with pytest.raises(ServiceError) as excinfo:
                client.result(job_id, timeout=30)
        assert excinfo.value.status == 500
        assert "synthetic failure" in str(excinfo.value)


class TestServiceObservability:
    def test_metrics_is_valid_exposition_with_latency_histograms(
            self, tmp_path):
        with _service(tmp_path) as service:
            client = ServiceClient(service.url)
            client.run(SAMPLE)
            client.run(SAMPLE)  # second lands in the result cache
            families = parse_exposition(client.metrics())
        submitted = families["repro_service_jobs_submitted_total"]
        assert submitted["kind"] == "counter"
        assert submitted["samples"][0][2] == 2.0
        assert families["repro_service_cache_hits_total"][
            "samples"][0][2] == 1.0
        assert families["repro_service_queue_depth"]["samples"][0][2] == 0.0
        for name in ("repro_job_queue_wait_seconds",
                     "repro_job_run_seconds"):
            hist = families[name]
            assert hist["kind"] == "histogram"
            counts = {tuple(sorted(labels.items())): value
                      for sample, labels, value in hist["samples"]
                      if sample.endswith("_count")}
            assert counts == {(("kind", "sample"),): 2.0}
        info = families["repro_service_info"]["samples"][0][1]
        assert info["executor"] == "inprocess"
        routes = {labels["route"] for _, labels, _
                  in families["repro_http_requests_total"]["samples"]}
        assert {"/jobs", "/results/{id}"} <= routes

    def test_concurrent_metrics_and_jobs_traffic(self, tmp_path):
        # Scrapes racing submissions must always parse: histograms are
        # rendered from copies taken under the metrics lock, so a
        # half-applied observe can never tear _count away from +Inf.
        failures = []

        def scrape(client):
            for _ in range(8):
                try:
                    parse_exposition(client.metrics())
                except (ValueError, ServiceError) as exc:
                    failures.append(exc)

        with _service(tmp_path, executor="threads") as service:
            client = ServiceClient(service.url)
            scrapers = [threading.Thread(target=scrape, args=(client,))
                        for _ in range(3)]
            for thread in scrapers:
                thread.start()
            job_ids = [client.submit(SAMPLE) for _ in range(3)]
            for job_id in job_ids:
                client.result(job_id)
            for thread in scrapers:
                thread.join()
        assert failures == []

    def test_service_log_records_access_and_job_lines(self, tmp_path):
        log_path = tmp_path / "service.jsonl"
        options = RunOptions(scale="ci", service_log=str(log_path))
        with _service(tmp_path, options=options) as service:
            client = ServiceClient(service.url)
            client.run(SAMPLE, tenant="observer")
            client.health()
        lines = [json.loads(line)
                 for line in log_path.read_text().splitlines()]
        access = [line for line in lines if line["log"] == "access"]
        jobs = [line for line in lines if line["log"] == "job"]
        assert {line["state"] for line in jobs} == \
            {"queued", "running", "done"}
        done = next(line for line in jobs if line["state"] == "done")
        assert done["tenant"] == "observer"
        assert done["kind"] == "sample"
        assert done["run_id"].startswith("r")
        assert done["run_seconds"] >= 0
        running = next(line for line in jobs if line["state"] == "running")
        assert running["queue_wait_seconds"] >= 0
        post = next(line for line in access
                    if line["route"] == "/jobs" and line["method"] == "POST")
        assert post["status"] == 202
        assert post["tenant"] == "observer"
        assert post["run_id"] == done["run_id"]
        assert post["duration_ms"] >= 0
        result_lines = [line for line in access
                        if line["route"] == "/results/{id}"]
        assert result_lines and all(
            line["run_id"] == done["run_id"] for line in result_lines)
        assert any(line["route"] == "/healthz" for line in access)

    def test_service_log_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_LOG", raising=False)
        with _service(tmp_path) as service:
            assert not service.log.enabled
            ServiceClient(service.url).run(SAMPLE)
        assert not list(tmp_path.glob("*.jsonl"))

    def test_service_log_failure_warns_once(self, tmp_path, capsys):
        from repro.service import ServiceLog

        log = ServiceLog(str(tmp_path))  # a directory: appends fail
        log.write("access", status=200)
        log.write("access", status=200)
        err = capsys.readouterr().err
        assert err.count("cannot append service log") == 1

    def test_run_id_joins_log_events_and_spans(self, tmp_path):
        # The acceptance grep: one id stamped by the service joins its
        # structured log, the events firehose, and the span records the
        # sharded execution wrote from pool worker processes.
        paths = {name: tmp_path / f"{name}.jsonl"
                 for name in ("service", "events", "spans")}
        options = RunOptions(scale="ci", cluster_jobs=2,
                             service_log=str(paths["service"]),
                             events=str(paths["events"]),
                             spans=str(paths["spans"]))
        with _service(tmp_path, options=options,
                      executor="pool") as service:
            client = ServiceClient(service.url)
            job_id = client.submit(SAMPLE)
            run_id = client.status(job_id)["run_id"]
            client.result(job_id)
            assert client.status(job_id)["run_id"] == run_id
        for name, path in paths.items():
            lines = [json.loads(line)
                     for line in path.read_text().splitlines()]
            stamped = [line for line in lines
                       if line.get("run_id") == run_id]
            assert stamped, f"run_id missing from {name} log"
        span_pids = {line["pid"]
                     for line in map(
                         json.loads,
                         paths["spans"].read_text().splitlines())
                     if line.get("run_id") == run_id}
        assert len(span_pids) >= 2  # worker processes joined the story

    def test_repeated_start_stop_joins_http_thread(self, tmp_path):
        service = _service(tmp_path)
        for _ in range(2):
            service.start()
            http_thread = service._http_thread
            assert http_thread.is_alive()
            service.stop()
            assert not http_thread.is_alive()
            assert service._http_thread is None
            assert service._worker is None

    def test_write_response_tolerates_gone_client(self):
        from repro.service.server import write_response

        class _Gone:
            close_connection = False

            def send_response(self, status):
                raise BrokenPipeError("client went away")

        handler = _Gone()
        assert write_response(handler, 200, b"{}", "application/json") \
            is False
        assert handler.close_connection is True

        class _Wire:
            class wfile:
                body = b""

                @classmethod
                def write(cls, data):
                    cls.body = data

            def __init__(self):
                self.headers = []

            def send_response(self, status):
                self.status = status

            def send_header(self, key, value):
                self.headers.append((key, value))

            def end_headers(self):
                pass

        wire = _Wire()
        assert write_response(wire, 200, b"ok", "text/plain") is True
        assert wire.status == 200
        assert ("Content-Length", "2") in wire.headers
        assert wire.wfile.body == b"ok"


class TestRunOptions:
    def test_reads_and_validates_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        monkeypatch.setenv("REPRO_MATRIX_JOBS", "3")
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")
        monkeypatch.setenv("REPRO_AUDIT", "1")
        options = RunOptions.from_env()
        assert options.scale == "ci"
        assert options.matrix_jobs == 3
        assert options.executor == "threads"
        assert options.audit is True

    @pytest.mark.parametrize("name,value,fragment", [
        ("REPRO_EXPERIMENT_SCALE", "galactic", "REPRO_EXPERIMENT_SCALE"),
        ("REPRO_MATRIX_JOBS", "many", "REPRO_MATRIX_JOBS"),
        ("REPRO_CLUSTER_JOBS", "-2", "REPRO_CLUSTER_JOBS"),
        ("REPRO_EXECUTOR", "warp", "unknown executor"),
        ("REPRO_AUDIT", "maybe", "REPRO_AUDIT"),
        ("REPRO_TELEMETRY", "kinda", "REPRO_TELEMETRY"),
        ("REPRO_LOG_COMPACTION", "zip", "REPRO_LOG_COMPACTION"),
        ("REPRO_BATCH_CORE", "turbo", "REPRO_BATCH_CORE"),
    ])
    def test_bad_values_name_the_variable(self, monkeypatch, name, value,
                                          fragment):
        monkeypatch.setenv(name, value)
        with pytest.raises(ValueError, match=fragment):
            RunOptions.from_env()

    def test_overrides_win_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "bench")
        options = RunOptions.from_env(scale="ci", matrix_jobs=2)
        assert options.scale == "ci"
        assert options.matrix_jobs == 2

    def test_none_override_keeps_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert RunOptions.from_env(scale=None).scale == "ci"

    def test_batch_core_scalar_spelling(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CORE", "scalar")
        assert RunOptions.from_env().batch_core is False

    def test_apply_exports_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        import os

        options = RunOptions(scale="ci", telemetry=True, audit=False)
        with options.apply():
            assert os.environ["REPRO_EXPERIMENT_SCALE"] == "ci"
            assert os.environ["REPRO_TELEMETRY"] == "1"
            # apply() removes strays the options leave unset.
            assert "REPRO_AUDIT" not in os.environ
        assert os.environ["REPRO_AUDIT"] == "1"
        assert "REPRO_TELEMETRY" not in os.environ

    def test_resolved_jobs(self):
        options = RunOptions(scale="ci", matrix_jobs=5, cluster_jobs=None)
        assert options.resolved_matrix_jobs() == 5
        assert options.resolved_cluster_jobs() == 1
        zero = RunOptions(scale="ci", matrix_jobs=0, cluster_jobs=0)
        assert zero.resolved_matrix_jobs() >= 1
        assert zero.resolved_cluster_jobs() >= 1

    def test_cli_exit_2_on_bad_env(self, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_EXECUTOR", "warp")
        assert main(["workloads"]) == 2
        assert "unknown executor" in capsys.readouterr().err
