"""Unit tests for skip-region logging."""

import pytest

from repro.core.logging import (
    SkipRegionLog,
    REF_LOAD,
    REF_STORE,
    REF_INSTRUCTION,
    BR_COND,
    BR_CALL,
    BR_RET,
    BR_JUMP,
)
from repro.functional import FunctionalMachine
from repro.isa import ProgramBuilder


def logging_machine():
    builder = ProgramBuilder()
    builder.jmp("main")
    builder.label("fn")
    builder.li(1, 0x9000)
    builder.load(2, 1, 0)
    builder.store(2, 1, 8)
    builder.ret()
    builder.label("main")
    builder.label("top")
    builder.call("fn")
    builder.addi(3, 3, 1)
    builder.andi(4, 3, 1)
    builder.beq(4, 0, "top")
    builder.jmp("top")
    return FunctionalMachine(builder.build())


def run_with_log(count=100):
    machine = logging_machine()
    log = SkipRegionLog()
    machine.run(
        count,
        mem_hook=log.make_mem_hook(),
        branch_hook=log.make_branch_hook(),
        ifetch_hook=log.make_ifetch_hook(),
        ifetch_block_bytes=16,
    )
    return log


class TestHooks:
    def test_memory_records_capture_loads_and_stores(self):
        log = run_with_log()
        kinds = {kind for _addr, kind in log.memory_records}
        assert REF_LOAD in kinds
        assert REF_STORE in kinds
        assert REF_INSTRUCTION in kinds

    def test_branch_records_capture_all_kinds(self):
        log = run_with_log()
        kinds = {kind for _pc, _np, _t, kind in log.branch_records}
        assert {BR_COND, BR_CALL, BR_RET, BR_JUMP} <= kinds

    def test_records_in_program_order(self):
        log = run_with_log()
        pcs = [pc for pc, _np, _t, _k in log.branch_records]
        assert len(pcs) > 4  # interleaved control flow recorded

    def test_conditional_outcomes_recorded(self):
        log = run_with_log()
        outcomes = [t for _pc, _np, t, kind in log.branch_records
                    if kind == BR_COND]
        assert True in outcomes and False in outcomes


class TestTail:
    def test_full_fraction_returns_everything(self):
        log = run_with_log()
        assert log.memory_tail(1.0) == log.memory_records

    def test_half_fraction_returns_recent_half(self):
        log = SkipRegionLog()
        log.memory_records.extend((i, REF_LOAD) for i in range(10))
        tail = log.memory_tail(0.5)
        assert [a for a, _ in tail] == [5, 6, 7, 8, 9]

    def test_fraction_rounding(self):
        log = SkipRegionLog()
        log.memory_records.extend((i, REF_LOAD) for i in range(3))
        assert len(log.memory_tail(0.5)) == 2  # round(1.5) == 2

    def test_tiny_fraction_of_few_records(self):
        log = SkipRegionLog()
        log.memory_records.append((1, REF_LOAD))
        assert log.memory_tail(0.2) == []

    def test_invalid_fraction_rejected(self):
        log = SkipRegionLog()
        with pytest.raises(ValueError):
            log.memory_tail(0.0)
        with pytest.raises(ValueError):
            log.branch_tail(1.5)

    def test_branch_tail(self):
        log = run_with_log()
        full = log.branch_tail(1.0)
        half = log.branch_tail(0.5)
        assert half == full[len(full) - len(half):]

    def test_full_fraction_tail_is_a_copy(self):
        # Regression: fraction >= 1.0 used to return the *live* record
        # list, so a consumer holding the tail across clear() saw it
        # drained underfoot.
        log = run_with_log()
        memory_tail = log.memory_tail(1.0)
        branch_tail = log.branch_tail(1.0)
        assert memory_tail is not log.memory_records
        assert branch_tail is not log.branch_records
        snapshot_memory = list(memory_tail)
        snapshot_branch = list(branch_tail)
        log.clear()
        assert memory_tail == snapshot_memory
        assert branch_tail == snapshot_branch
        assert memory_tail != []


class TestLifecycle:
    def test_record_count(self):
        log = run_with_log()
        assert log.record_count() == \
            len(log.memory_records) + len(log.branch_records)

    def test_clear(self):
        log = run_with_log()
        log.clear()
        assert log.record_count() == 0
        assert log.memory_records == []
        assert log.branch_records == []
