"""Unit tests for the reverse-reconstruction cache primitives, including
the paper's Figure 2 worked example."""

from repro.cache import Cache, CacheConfig, WritePolicy


def make_cache(assoc=4, sets=1, policy=WritePolicy.WTNA) -> Cache:
    return Cache(CacheConfig(
        name="t", size_bytes=sets * assoc * 64, line_bytes=64,
        associativity=assoc, write_policy=policy, hit_latency=1,
    ))


def fill_set(cache, tags):
    """Forward-fill one set so `tags[0]` is LRU and `tags[-1]` is MRU."""
    for tag in tags:
        cache.access(tag)


def mru_order(cache, set_index=0):
    """Line tags from MRU to LRU (None for invalid ways)."""
    order = cache.order[set_index]
    return [cache.tags[set_index][way] for way in order]


class TestFigure2Example:
    """Paper Figure 2: stale set [B, A, D, C] (MRU..LRU), forward stream
    E, A, F, C; normal simulation and reverse reconstruction must agree."""

    def setup_method(self):
        self.cache = make_cache(assoc=4, sets=1)
        # Establish stale state: access C, D, A, B so B is MRU, C is LRU.
        self.B, self.A, self.D, self.C = 0x100, 0x200, 0x300, 0x400
        self.E, self.F = 0x500, 0x600
        fill_set(self.cache, [self.C, self.D, self.A, self.B])

    def tags_of(self, addresses):
        return [self.cache.split_address(a)[1] for a in addresses]

    def test_forward_simulation_reference(self):
        for address in (self.E, self.A, self.F, self.C):
            self.cache.access(address)
        # Forward result: C MRU, then F, A, E.
        assert mru_order(self.cache) == self.tags_of(
            [self.C, self.F, self.A, self.E]
        )

    def test_reverse_reconstruction_matches_forward(self):
        forward = make_cache(assoc=4, sets=1)
        fill_set(forward, [self.C, self.D, self.A, self.B])
        for address in (self.E, self.A, self.F, self.C):
            forward.access(address)

        self.cache.begin_reconstruction()
        for address in (self.C, self.F, self.A, self.E):  # reverse order
            self.cache.reconstruct_reference(address)
        assert mru_order(self.cache) == mru_order(forward)

    def test_reconstruction_ranks_by_discovery(self):
        self.cache.begin_reconstruction()
        self.cache.reconstruct_reference(self.C)
        self.cache.reconstruct_reference(self.F)
        # C discovered first -> MRU; F second.
        assert mru_order(self.cache)[:2] == self.tags_of([self.C, self.F])


class TestReconstructionRules:
    def test_redundant_reference_ignored(self):
        cache = make_cache()
        cache.begin_reconstruction()
        assert cache.reconstruct_reference(0x100)
        assert not cache.reconstruct_reference(0x100)
        assert cache.stats.reconstruction_skipped == 1

    def test_fully_reconstructed_set_ignores_all(self):
        cache = make_cache(assoc=2)
        cache.begin_reconstruction()
        assert cache.reconstruct_reference(0x100)
        assert cache.reconstruct_reference(0x200)
        assert cache.set_fully_reconstructed(0)
        assert not cache.reconstruct_reference(0x300)
        assert not cache.probe(0x300)

    def test_present_stale_block_promoted_not_reinserted(self):
        cache = make_cache()
        fill_set(cache, [0x100, 0x200])
        evictions_before = cache.stats.evictions
        cache.begin_reconstruction()
        cache.reconstruct_reference(0x100)
        assert cache.stats.evictions == evictions_before
        assert cache.probe(0x200)  # untouched stale survivor

    def test_absent_block_replaces_stale_lru(self):
        cache = make_cache(assoc=2)
        fill_set(cache, [0x100, 0x200])  # 0x100 is LRU
        cache.begin_reconstruction()
        cache.reconstruct_reference(0x300)
        assert not cache.probe(0x100)
        assert cache.probe(0x200)

    def test_stale_survivors_rank_below_reconstructed(self):
        cache = make_cache(assoc=4)
        fill_set(cache, [0x100, 0x200, 0x300, 0x400])  # 0x400 MRU
        cache.begin_reconstruction()
        cache.reconstruct_reference(0x500)
        order = mru_order(cache)
        assert order[0] == cache.split_address(0x500)[1]
        # Stale survivors keep relative order behind the reconstructed one.
        assert order[1:] == [cache.split_address(a)[1]
                             for a in (0x400, 0x300, 0x200)]

    def test_wbwa_reconstructed_store_sets_dirty(self):
        cache = make_cache(policy=WritePolicy.WBWA)
        cache.begin_reconstruction()
        cache.reconstruct_reference(0x100, is_write=True)
        set_index, _ = cache.split_address(0x100)
        way = cache.order[set_index][0]
        assert cache.dirty[set_index][way]

    def test_wtna_allocates_on_reconstructed_write(self):
        # Paper: "the block is allocated even if the access is a write".
        cache = make_cache(policy=WritePolicy.WTNA)
        cache.begin_reconstruction()
        assert cache.reconstruct_reference(0x100, is_write=True)
        assert cache.probe(0x100)

    def test_begin_reconstruction_clears_bits(self):
        cache = make_cache()
        cache.begin_reconstruction()
        cache.reconstruct_reference(0x100)
        cache.begin_reconstruction()
        assert cache.recon_count[0] == 0
        assert not any(any(bits) for bits in cache.reconstructed)
        # The same reference applies again after a new begin.
        assert cache.reconstruct_reference(0x100)

    def test_reconstruction_counts_in_stats(self):
        cache = make_cache(assoc=2)
        cache.begin_reconstruction()
        cache.reconstruct_reference(0x100)
        cache.reconstruct_reference(0x100)
        cache.reconstruct_reference(0x200)
        cache.reconstruct_reference(0x300)
        assert cache.stats.reconstruction_applied == 2
        assert cache.stats.reconstruction_skipped == 2
