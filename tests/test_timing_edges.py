"""Edge-case tests for the timing core's resource and control modelling."""

import pytest

from repro.branch import BranchPredictor, PredictorConfig
from repro.cache import MemoryHierarchy, paper_hierarchy_config
from repro.functional import FunctionalMachine
from repro.isa import ProgramBuilder
from repro.timing import CoreConfig, TimingSimulator


def build(emit, core=None, hierarchy_scale=16):
    builder = ProgramBuilder()
    emit(builder)
    machine = FunctionalMachine(builder.build())
    hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=hierarchy_scale))
    predictor = BranchPredictor(PredictorConfig(1024, 256, 8))
    return TimingSimulator(machine, hierarchy, predictor, core)


def branchy_loop(b):
    b.label("top")
    b.addi(1, 1, 1)
    b.andi(2, 1, 3)
    b.beq(2, 0, "skip")
    b.addi(3, 3, 1)
    b.label("skip")
    b.jmp("top")


class TestBranchCheckpoints:
    def test_few_checkpoints_throttle_branchy_code(self):
        many = build(branchy_loop, CoreConfig(max_inflight_branches=8))
        few = build(branchy_loop, CoreConfig(max_inflight_branches=1))
        assert few.run(4000).ipc <= many.run(4000).ipc


class TestFrontEnd:
    def test_taken_branches_break_fetch_groups(self):
        # A tight taken loop fetches at most one iteration per cycle even
        # with an 8-wide front end.
        def tight(b):
            b.label("top")
            b.addi(1, 1, 1)
            b.jmp("top")
        result = build(tight).run(4000)
        assert result.ipc <= 2.05  # 2 instructions per taken transfer

    def test_icache_pressure_reduces_ipc(self):
        # Straight-line code much larger than the L1I forces a fetch miss
        # per block; a small loop fits entirely.
        def huge_straight_line(b):
            b.label("top")
            for step in range(6000):
                b.addi(1 + step % 8, 1 + step % 8, 1)
            b.jmp("top")

        def tiny_loop(b):
            b.label("top")
            for step in range(16):
                b.addi(1 + step % 8, 1 + step % 8, 1)
            b.jmp("top")

        big = build(huge_straight_line, hierarchy_scale=64).run(6000)
        small = build(tiny_loop, hierarchy_scale=64).run(6000)
        assert big.ipc < small.ipc


class TestLsq:
    def test_store_heavy_code_respects_lsq(self):
        def stores(b):
            b.li(1, 0x10000)
            b.label("top")
            for offset in range(8):
                b.store(2, 1, offset * 8)
            b.jmp("top")
        roomy = build(stores, CoreConfig(lsq_entries=64)).run(4000)
        cramped = build(stores, CoreConfig(lsq_entries=2)).run(4000)
        assert cramped.ipc <= roomy.ipc


class TestFrequencyIndependentInvariants:
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_ipc_bounded_by_retire_width(self, width):
        def independent(b):
            b.label("top")
            for reg in range(1, 9):
                b.addi(reg, reg, 1)
            b.jmp("top")
        core = CoreConfig(retire_width=width, issue_width=max(width, 1))
        result = build(independent, core).run(3000)
        assert result.ipc <= width + 1e-9

    def test_cycles_monotone_in_memory_latency(self):
        def loads(b):
            b.li(1, 0x100000)
            b.label("top")
            b.load(2, 1, 0)
            b.addi(1, 1, 4096)
            b.jmp("top")
        import dataclasses
        fast_config = paper_hierarchy_config(scale=16)
        slow_config = dataclasses.replace(fast_config, memory_latency=300)

        def run_with(config):
            builder = ProgramBuilder()
            loads(builder)
            machine = FunctionalMachine(builder.build())
            sim = TimingSimulator(
                machine, MemoryHierarchy(config),
                BranchPredictor(PredictorConfig(1024, 256, 8)),
            )
            return sim.run(2000)

        assert run_with(slow_config).cycles > run_with(fast_config).cycles

    def test_deeper_frontend_never_faster(self):
        shallow = build(branchy_loop, CoreConfig(frontend_depth=1)).run(4000)
        deep = build(branchy_loop, CoreConfig(frontend_depth=5)).run(4000)
        assert deep.cycles >= shallow.cycles
