"""Unit tests for the text assembler."""

import pytest

from repro.isa import assemble, AssemblyError, Opcode
from repro.functional import FunctionalMachine


class TestParsing:
    def test_minimal_program(self):
        program = assemble("halt")
        assert len(program) == 1
        assert program.instructions[0].opcode is Opcode.HALT

    def test_comments_and_blank_lines(self):
        program = assemble(
            """
            # a comment
            nop   # trailing comment

            halt
            """
        )
        assert len(program) == 2

    def test_label_on_same_line(self):
        program = assemble("start: nop\n jmp start\n")
        assert program.instructions[1].target == 0

    def test_label_on_own_line(self):
        program = assemble("start:\n nop\n jmp start\n")
        assert program.instructions[1].target == 0

    def test_name_directive(self):
        assert assemble(".name widget\nhalt\n").name == "widget"

    def test_entry_directive(self):
        program = assemble(
            ".entry main\nfn: ret\nmain: call fn\nhalt\n"
        )
        assert program.entry == 1

    def test_hex_immediates(self):
        program = assemble("li r1, 0xFF\nhalt\n")
        assert program.instructions[0].imm == 255

    def test_negative_immediates(self):
        program = assemble("addi r1, r1, -4\nhalt\n")
        assert program.instructions[0].imm == -4

    def test_commas_optional(self):
        a = assemble("add r1, r2, r3\nhalt\n")
        b = assemble("add r1 r2 r3\nhalt\n")
        assert a.instructions[0] == b.instructions[0]


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1\n")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="register"):
            assemble("add r1, r2, r99\n")

    def test_not_a_register(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2, 7\n")

    def test_bad_immediate(self):
        with pytest.raises(AssemblyError, match="immediate"):
            assemble("li r1, banana\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("add r1, r2\n")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble("jmp nowhere\n")

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError, match="directive"):
            assemble(".bogus\nhalt\n")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("nop\nbadop\n")


class TestExecution:
    def test_countdown_loop(self):
        program = assemble(
            """
            .entry start
            start:  li   r1, 10
                    li   r2, 0
            loop:   addi r2, r2, 1
                    addi r1, r1, -1
                    bne  r1, r0, loop
                    halt
            """
        )
        machine = FunctionalMachine(program)
        machine.run(100)
        assert machine.halted
        assert machine.registers[2] == 10

    def test_call_and_return(self):
        program = assemble(
            """
            .entry main
            double: add r1, r10, r10
                    ret
            main:   li r10, 21
                    call double
                    halt
            """
        )
        machine = FunctionalMachine(program)
        machine.run(100)
        assert machine.halted
        assert machine.registers[1] == 42

    def test_memory_roundtrip(self):
        program = assemble(
            """
            li    r1, 4096
            li    r2, 1234
            store r2, r1, 0
            load  r3, r1, 0
            halt
            """
        )
        machine = FunctionalMachine(program)
        machine.run(100)
        assert machine.registers[3] == 1234
