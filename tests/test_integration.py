"""Integration tests: the paper's qualitative claims, end to end.

These run one moderately sized experiment per workload pair and assert
the *shape* of the paper's results (who wins, in which direction), not
absolute numbers.
"""

import pytest

from repro.core import ReverseStateReconstruction
from repro.harness import ExperimentScale, run_workload_experiment
from repro.warmup import FixedPeriodWarmup, NoWarmup, SmartsWarmup


SCALE = ExperimentScale("integration", total_instructions=240_000,
                        num_clusters=20, cluster_size=1_000,
                        warmup_prefix=30_000)


def methods():
    return [
        NoWarmup(),
        FixedPeriodWarmup(0.2),
        SmartsWarmup(warm_cache=True, warm_predictor=False),
        SmartsWarmup(warm_cache=False, warm_predictor=True),
        SmartsWarmup(),
        ReverseStateReconstruction(0.2),
        ReverseStateReconstruction(1.0),
    ]


@pytest.fixture(scope="module")
def gcc():
    return run_workload_experiment("gcc", methods(), SCALE)


@pytest.fixture(scope="module")
def vpr():
    return run_workload_experiment("vpr", methods(), SCALE)


class TestPaperShape:
    def test_no_warmup_has_largest_error(self, gcc):
        none_error = gcc.outcomes["None"].relative_error
        assert none_error > gcc.outcomes["S$BP"].relative_error
        assert none_error > gcc.outcomes["R$BP (100%)"].relative_error

    def test_no_warmup_has_lowest_work(self, gcc):
        none_work = gcc.outcomes["None"].work_units
        for name, outcome in gcc.outcomes.items():
            if name != "None":
                assert none_work < outcome.work_units, name

    def test_smarts_both_is_most_accurate_warmup(self, gcc):
        smarts_error = gcc.outcomes["S$BP"].relative_error
        assert smarts_error < gcc.outcomes["None"].relative_error
        assert smarts_error < 0.10

    def test_full_reverse_matches_smarts_accuracy(self, gcc, vpr):
        """Paper: accuracy loss < 0.3% on average; we allow a few percent
        absolute at this reduced scale."""
        for experiment in (gcc, vpr):
            gap = abs(
                experiment.outcomes["R$BP (100%)"].relative_error
                - experiment.outcomes["S$BP"].relative_error
            )
            assert gap < 0.05

    def test_reverse_reconstruction_is_cheaper_than_smarts(self, gcc, vpr):
        for experiment in (gcc, vpr):
            assert experiment.speedup("R$BP (20%)") > 1.0
            assert experiment.outcomes["R$BP (20%)"].run.cost.cache_updates \
                < experiment.outcomes["S$BP"].run.cost.cache_updates / 3

    def test_cache_warmup_matters_more_than_bp(self, gcc):
        """Paper Figures 5/6: cache-only warm-up error ~3%, BP-only ~22%."""
        cache_only = gcc.outcomes["S$"].relative_error
        bp_only = gcc.outcomes["SBP"].relative_error
        assert cache_only < bp_only

    def test_reverse_error_monotone_in_fraction(self, gcc):
        """More log consumed -> closer to SMARTS (allowing sampling
        noise at this reduced test scale)."""
        full = gcc.outcomes["R$BP (100%)"].relative_error
        partial = gcc.outcomes["R$BP (20%)"].relative_error
        assert full <= partial + 0.05

    def test_confidence_tests_pass_for_good_warmup(self, gcc, vpr):
        for experiment in (gcc, vpr):
            assert experiment.outcomes["R$BP (100%)"].passes_confidence

    def test_fixed_period_between_none_and_smarts(self, gcc):
        fp = gcc.outcomes["FP (20%)"].relative_error
        assert fp < gcc.outcomes["None"].relative_error


class TestCrossWorkloadShape:
    def test_pointer_chasing_limits_reverse_savings(self, vpr):
        """mcf-like huge working sets reconstruct almost every logged
        reference (little redundancy), so its speedup trails a reuse-heavy
        workload — mirrored here by comparing applied/scanned ratios."""
        rsr = vpr.outcomes["R$BP (20%)"].run
        assert rsr.cost.cache_updates > 0
