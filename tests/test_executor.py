"""Conformance suite for the pluggable executor backends.

Every backend registered in :mod:`repro.harness.executor` must satisfy
the same contract: results return in task order (deterministic fold),
sharded simulation folds bit-identically to serial, unpicklable work
degrades to in-process execution with identical results, span parents
propagate into workers, worker crashes re-raise in the parent, and
``close(cancel=True)`` terminates live worker processes instead of
orphaning them (the interrupted-run bugfix).  Backends added via
:func:`register_executor` are automatically covered when the suite is
parametrized over :func:`registered_executor_names`.
"""

import json
import os
import pickle
import subprocess
import sys
import threading
import time

import pytest

from repro.core import ReverseStateReconstruction
from repro.harness.executor import (
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV_VAR,
    Executor,
    InProcessExecutor,
    ProcessPoolBackend,
    SubprocessQueueExecutor,
    ThreadExecutor,
    describe_executors,
    executor_factory,
    register_executor,
    registered_executor_names,
    resolve_executor,
    unregister_executor,
)
from repro.harness.parallel import map_tasks
from repro.sampling import SampledSimulator, SamplingRegimen
from repro.telemetry.runid import RUN_ID_ENV_VAR
from repro.telemetry.spans import SPAN_PARENT_ENV_VAR, SpanContext
from repro.workloads import build_workload

BACKENDS = registered_executor_names()

REGIMEN = SamplingRegimen(total_instructions=24_000, num_clusters=4,
                          cluster_size=600, seed=7)


def _square(task):
    return task * task


def _slow_square(task):
    index, delay = task
    time.sleep(delay)
    return index * index


def _boom(task):
    if task == 3:
        raise ValueError(f"boom {task}")
    return task


def _read_span_parent(_task):
    return os.environ.get(SPAN_PARENT_ENV_VAR)


def _read_run_id(_task):
    return os.environ.get(RUN_ID_ENV_VAR)


def _sleep_forever(_task):
    time.sleep(120)


class _Unpicklable:
    """A worker that cannot cross a process boundary."""

    def __getstate__(self):
        raise pickle.PicklingError("deliberately unpicklable")

    def __call__(self, task):
        return task + 1


@pytest.mark.parametrize("name", BACKENDS)
class TestConformance:
    def test_results_in_task_order(self, name):
        tasks = list(range(8))
        with resolve_executor(name, jobs=4) as backend:
            assert backend.map(_square, tasks) == [t * t for t in tasks]

    def test_order_preserved_under_skewed_completion(self, name):
        # Later tasks finish first; the fold must still be in task order.
        tasks = [(i, 0.05 * (4 - i)) for i in range(5)]
        with resolve_executor(name, jobs=5) as backend:
            assert backend.map(_slow_square, tasks) == [
                i * i for i in range(5)
            ]

    def test_on_result_sees_every_index_once(self, name):
        seen = []
        with resolve_executor(name, jobs=4) as backend:
            backend.map(_square, list(range(6)),
                        on_result=lambda i, r: seen.append((i, r)))
        assert sorted(seen) == [(i, i * i) for i in range(6)]

    def test_crash_propagates(self, name):
        with pytest.raises(ValueError, match="boom 3"):
            with resolve_executor(name, jobs=4) as backend:
                backend.map(_boom, list(range(6)))

    def test_unpicklable_worker_still_runs(self, name):
        # Backends that require pickling must degrade to in-process
        # execution (with identical results) instead of failing.
        with resolve_executor(name, jobs=4) as backend:
            assert backend.map(_Unpicklable(), list(range(5))) == [
                1, 2, 3, 4, 5,
            ]

    def test_span_parent_propagates(self, name):
        context = SpanContext(parent_id="span-conform", origin_wall_ns=12345)
        parents = map_tasks(_read_span_parent, list(range(4)), jobs=2,
                            span_context=context, executor=name)
        assert parents == [context.encode()] * 4

    def test_run_id_propagates(self, name, monkeypatch):
        # The correlation-id leg of the conformance contract: every
        # backend's workers — threads or separate processes — see the
        # run_id map_tasks plants, and it never leaks past the call.
        monkeypatch.delenv(RUN_ID_ENV_VAR, raising=False)
        seen = map_tasks(_read_run_id, list(range(4)), jobs=2,
                         executor=name, run_id="rconform01")
        assert seen == ["rconform01"] * 4
        assert RUN_ID_ENV_VAR not in os.environ
        # Without an explicit id, the ambient environment wins.
        monkeypatch.setenv(RUN_ID_ENV_VAR, "rambient02")
        assert map_tasks(_read_run_id, [0], jobs=1, executor=name) == \
            ["rambient02"]

    def test_sharded_fold_bit_identical_across_backends(self, name,
                                                        monkeypatch):
        """The acceptance bar: for the same sharding, every backend's
        Phase B fold — cluster IPCs, estimate, WarmupCost (gap logs
        included) — is bit-identical to the in-process reference, and
        the cost ledger matches the serial walk exactly (the pipeline's
        existing serial/sharded contract)."""
        workload = build_workload("ammp")

        def run(cluster_jobs):
            simulator = SampledSimulator(
                workload, REGIMEN, warmup_prefix=2_000, detail_ramp=64,
                cluster_jobs=cluster_jobs,
            )
            return simulator.run(ReverseStateReconstruction(0.3))

        monkeypatch.setenv(EXECUTOR_ENV_VAR, "inprocess")
        serial = run(1)
        reference = run(2)
        monkeypatch.setenv(EXECUTOR_ENV_VAR, name)
        sharded = run(2)
        assert sharded.cluster_ipcs == reference.cluster_ipcs
        assert sharded.estimate == reference.estimate
        assert sharded.cost == reference.cost
        assert sharded.cost == serial.cost


class TestRegistry:
    def test_unknown_name_is_readable(self):
        with pytest.raises(ValueError, match="unknown executor 'warp'"):
            resolve_executor("warp")

    def test_known_names_listed_in_error(self):
        with pytest.raises(ValueError, match="pool"):
            executor_factory("nope")

    def test_register_resolve_unregister(self):
        class Custom(InProcessExecutor):
            name = "custom-test"

        register_executor("custom-test", Custom)
        try:
            backend = resolve_executor("custom-test", jobs=2)
            assert isinstance(backend, Custom)
            assert "custom-test" in registered_executor_names()
        finally:
            unregister_executor("custom-test")
        assert "custom-test" not in registered_executor_names()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_executor("pool", ProcessPoolBackend)

    def test_replace_allows_override(self):
        original = executor_factory("inprocess")
        register_executor("inprocess", InProcessExecutor, replace=True)
        assert executor_factory("inprocess") is original

    def test_env_var_picks_backend(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "threads")
        assert isinstance(resolve_executor(None), ThreadExecutor)

    def test_default_is_pool(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        assert DEFAULT_EXECUTOR == "pool"
        assert isinstance(resolve_executor(None), ProcessPoolBackend)

    def test_instance_passes_through(self):
        backend = ThreadExecutor(3)
        assert resolve_executor(backend) is backend

    def test_describe_covers_all_backends(self):
        rows = describe_executors()
        assert [name for name, _, _ in rows] == BACKENDS
        assert all(desc for _, _, desc in rows)


class TestCancelCleanup:
    """``close(cancel=True)`` must terminate live workers (the
    interrupted-run orphan bugfix)."""

    def _assert_cancel_kills_workers(self, backend, live_processes):
        error = []

        def run():
            try:
                backend.map(_sleep_forever, list(range(4)))
            except BaseException as exc:  # expected: cancelled mid-map
                error.append(exc)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not live_processes(backend):
            time.sleep(0.05)
        procs = live_processes(backend)
        assert procs, "workers never came up"
        backend.close(cancel=True)
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and any(
                alive() for alive in procs):
            time.sleep(0.05)
        assert not any(alive() for alive in procs), \
            "cancel left live worker processes behind"
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_pool_cancel_terminates_workers(self):
        backend = ProcessPoolBackend(jobs=2)
        self._assert_cancel_kills_workers(
            backend,
            lambda b: [proc.is_alive for proc in
                       list(getattr(b._pool, "_processes", {}).values())]
            if b._pool is not None else [],
        )

    def test_subprocess_queue_cancel_terminates_workers(self):
        backend = SubprocessQueueExecutor(jobs=2)
        self._assert_cancel_kills_workers(
            backend,
            lambda b: [(lambda p: lambda: p.poll() is None)(proc)
                       for proc in list(b._workers)],
        )

    def test_subprocess_queue_cancel_removes_spool(self):
        backend = SubprocessQueueExecutor(jobs=2)
        thread = threading.Thread(
            target=lambda: self._swallow(backend), daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and backend._spool is None:
            time.sleep(0.05)
        spool = backend._spool
        assert spool is not None and os.path.isdir(spool)
        backend.close(cancel=True)
        thread.join(timeout=30)
        assert not os.path.isdir(spool)

    @staticmethod
    def _swallow(backend):
        try:
            backend.map(_sleep_forever, list(range(4)))
        except BaseException:
            pass

    def test_context_manager_cancels_on_exception(self):
        backend = ThreadExecutor(jobs=2)
        with pytest.raises(RuntimeError, match="interrupted"):
            with backend:
                raise RuntimeError("interrupted")
        assert backend._pool is None


class TestDeprecatedShim:
    def test_run_matrix_parallel_warns_and_delegates(self):
        from repro.harness import parallel

        with pytest.deprecated_call():
            matrix = parallel.run_matrix_parallel(
                _EmptySuite, workload_names=(), jobs=1)
        assert matrix == {}


def _EmptySuite():
    return []


class TestAtomicEventAppends:
    """Concurrent multi-process appends must interleave whole lines
    (the events-JSONL half of the interrupted-run bugfix)."""

    def test_concurrent_writers_never_fragment_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writers = 4
        per_writer = 50
        script = (
            "import sys\n"
            "from repro.telemetry.events import emit_event\n"
            "wid, count, path = sys.argv[1], int(sys.argv[2]), sys.argv[3]\n"
            "for i in range(count):\n"
            "    emit_event(path, 'cell', writer=wid, seq=i,\n"
            "               pad='x' * 512)\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(w), str(per_writer),
                 str(path)],
                env={**os.environ,
                     "PYTHONPATH": os.pathsep.join(sys.path)},
            )
            for w in range(writers)
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        lines = path.read_text().splitlines()
        assert len(lines) == writers * per_writer
        records = [json.loads(line) for line in lines]  # no fragments
        for w in range(writers):
            seqs = [r["seq"] for r in records if r["writer"] == str(w)]
            assert sorted(seqs) == list(range(per_writer))

    def test_emit_without_path_is_noop(self):
        from repro.telemetry.events import emit_event

        emit_event(None, "cell", nope=1)  # must not raise
