"""Unit + property tests for cluster-sampling statistics (paper §5)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import cluster_estimate, relative_error, Z_95


class TestClusterEstimate:
    def test_mean(self):
        estimate = cluster_estimate([1.0, 2.0, 3.0])
        assert estimate.mean == pytest.approx(2.0)

    def test_matches_numpy_formulas(self):
        values = [0.5, 0.7, 0.9, 1.1, 0.6]
        estimate = cluster_estimate(values)
        assert estimate.std_dev == pytest.approx(np.std(values, ddof=1))
        assert estimate.std_error == pytest.approx(
            np.std(values, ddof=1) / math.sqrt(len(values))
        )

    def test_single_cluster_degenerates(self):
        estimate = cluster_estimate([0.8])
        assert estimate.mean == 0.8
        assert estimate.std_error == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cluster_estimate([])

    def test_identical_clusters_zero_error(self):
        estimate = cluster_estimate([1.5] * 10)
        assert estimate.std_error == 0.0
        assert estimate.error_bound == 0.0


class TestConfidenceInterval:
    def test_error_bound_is_196_se(self):
        estimate = cluster_estimate([1.0, 2.0, 3.0, 4.0])
        assert estimate.error_bound == pytest.approx(Z_95 * estimate.std_error)

    def test_interval_symmetry(self):
        estimate = cluster_estimate([1.0, 2.0, 3.0])
        low, high = estimate.interval
        assert estimate.mean - low == pytest.approx(high - estimate.mean)

    def test_contains_true_value(self):
        estimate = cluster_estimate([0.9, 1.0, 1.1])
        assert estimate.contains(1.0)
        assert not estimate.contains(5.0)

    def test_degenerate_interval_contains_only_mean(self):
        estimate = cluster_estimate([2.0, 2.0])
        assert estimate.contains(2.0)
        assert not estimate.contains(2.0001)

    def test_str_renders(self):
        text = str(cluster_estimate([1.0, 2.0]))
        assert "±" in text and "n=2" in text


class TestRelativeError:
    def test_basic(self):
        assert relative_error(2.0, 1.8) == pytest.approx(0.1)

    def test_symmetric_in_magnitude(self):
        assert relative_error(2.0, 2.2) == pytest.approx(0.1)

    def test_zero_true_rejected(self):
        with pytest.raises(ValueError):
            relative_error(0.0, 1.0)

    def test_exact_estimate(self):
        assert relative_error(1.5, 1.5) == 0.0


@given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=2,
                max_size=100))
@settings(max_examples=200, deadline=None)
def test_estimate_invariants(values):
    estimate = cluster_estimate(values)
    ulp = 1e-12 * max(abs(v) for v in values)
    assert min(values) - ulp <= estimate.mean <= max(values) + ulp
    assert estimate.std_error >= 0
    assert estimate.std_error <= estimate.std_dev
    low, high = estimate.interval
    assert low <= estimate.mean <= high
    assert estimate.contains(estimate.mean)


@given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=8,
                max_size=50),
       st.integers(min_value=2, max_value=5))
@settings(max_examples=100, deadline=None)
def test_standard_error_shrinks_with_replication(values, factor):
    """Replicating the sample k times divides SE by ~sqrt(k) (up to the
    Bessel ddof correction, which vanishes as n grows)."""
    base = cluster_estimate(values)
    replicated = cluster_estimate(values * factor)
    if base.std_error > 0:
        n, k = len(values), factor
        correction = math.sqrt(((n - 1) / n) * (k * n / (k * n - 1)))
        expected = base.std_error / math.sqrt(k) * correction
        assert replicated.std_error == pytest.approx(expected, rel=1e-9)
