"""Semantic tests for each workload kernel emitter."""

import numpy as np
import pytest

from repro.functional import FunctionalMachine, Memory
from repro.isa import ProgramBuilder
from repro.workloads import init_jump_table, init_pointer_chain
from repro.workloads import kernels


def run_kernel(emit, args, memory=None, steps=100_000, setup=None):
    """Emit one kernel plus a driver that calls it once, then halts."""
    builder = ProgramBuilder()
    builder.jmp("main")
    entry = emit(builder)
    builder.label("main")
    builder.li(kernels.RNG_REG, 12345)
    if setup:
        setup(builder)
    for register, value in args.items():
        builder.li(register, value)
    builder.call(entry)
    builder.halt()
    machine = FunctionalMachine(builder.build(), memory)
    machine.run(steps)
    assert machine.halted, "kernel did not return"
    return machine


BASE = 0x1000_0000


class TestStreamSum:
    def test_sums_range(self):
        memory = Memory()
        memory.fill_words(BASE, [3, 5, 7, 11])
        machine = run_kernel(
            lambda b: kernels.emit_stream_sum(b, "k"),
            {10: BASE, 11: 4}, memory,
        )
        assert machine.registers[15] == 26


class TestStrideWalk:
    def test_strided_sum(self):
        memory = Memory()
        for i in range(8):
            memory.store(BASE + i * 128, i)
        machine = run_kernel(
            lambda b: kernels.emit_stride_walk(b, "k"),
            {10: BASE, 11: 8, 12: 128}, memory,
        )
        assert machine.registers[15] == sum(range(8))


class TestPointerChase:
    def test_follows_chain(self):
        memory = Memory()
        rng = np.random.default_rng(0)
        head = init_pointer_chain(memory, BASE, 16, rng)
        machine = run_kernel(
            lambda b: kernels.emit_pointer_chase(b, "k"),
            {10: head, 11: 16}, memory,
        )
        # 16 steps around a 16-node cycle returns to the head.
        assert machine.registers[15] == head


class TestChaseCursor:
    def test_continues_across_calls(self):
        memory = Memory()
        rng = np.random.default_rng(0)
        head = init_pointer_chain(memory, BASE, 16, rng)

        builder = ProgramBuilder()
        builder.jmp("main")
        entry = kernels.emit_chase_cursor(builder, "k")
        builder.label("main")
        builder.li(23, head)
        builder.li(11, 10)
        builder.call(entry)
        builder.li(11, 6)
        builder.call(entry)  # 10 + 6 = 16 steps: full lap
        builder.halt()
        machine = FunctionalMachine(builder.build(), memory)
        machine.run(10_000)
        assert machine.registers[23] == head


class TestStreamCursor:
    def test_wraps_and_advances(self):
        memory = Memory()
        memory.fill_words(BASE, [1, 2, 3, 4])
        builder = ProgramBuilder()
        builder.jmp("main")
        entry = kernels.emit_stream_cursor(builder, "k", cursor_reg=24)
        builder.label("main")
        builder.add(24, 0, 0)
        builder.li(10, BASE)
        builder.li(11, 3)   # 4-word mask
        builder.li(12, 6)   # one and a half laps
        builder.call(entry)
        builder.halt()
        machine = FunctionalMachine(builder.build(), memory)
        machine.run(10_000)
        assert machine.registers[24] == 6          # cursor advanced
        assert machine.registers[15] == 1 + 2 + 3 + 4 + 1 + 2


class TestHashKernels:
    def test_hash_update_increments_in_range(self):
        machine = run_kernel(
            lambda b: kernels.emit_hash_update(b, "k"),
            {10: BASE, 11: 63, 12: 40},
        )
        words = machine.memory._words
        touched = [a for a in words if BASE <= a < BASE + 64 * 8]
        assert touched, "no table slots written"
        assert sum(words[a] for a in touched) == 40

    def test_walking_hash_stays_in_window(self):
        def setup(b):
            b.li(25, 8)  # window base at word 8
        machine = run_kernel(
            lambda b: kernels.emit_walking_hash(b, "k"),
            {10: BASE, 11: 1023, 12: 30, 13: 15}, setup=setup,
        )
        for address in machine.memory._words:
            word = (address - BASE) // 8
            # +2 slack: a 3-field record starting at the window's last
            # slot spills two words past it by design.
            assert 8 <= word <= 8 + 15 + 2, (
                "write outside the drifting window"
            )

    def test_scatter_store_writes_in_range(self):
        machine = run_kernel(
            lambda b: kernels.emit_scatter_store(b, "k"),
            {10: BASE, 11: 63, 12: 25},
        )
        touched = [
            a for a in machine.memory._words if BASE <= a < BASE + 64 * 8
        ]
        assert len(touched) >= 1
        assert machine.memory.footprint_words() == len(touched)

    def test_walking_scatter_writes_fields(self):
        def setup(b):
            b.li(25, 0)
        machine = run_kernel(
            lambda b: kernels.emit_walking_scatter(b, "k", fields=3),
            {10: BASE, 11: 1023, 12: 10, 13: 7}, setup=setup,
        )
        assert machine.memory.footprint_words() >= 3


class TestBranchMaze:
    @pytest.mark.parametrize("threshold,low,high", [
        (0, 0.0, 0.02),      # never taken
        (128, 0.35, 0.65),   # balanced
        (256, 0.98, 1.0),    # always taken
    ])
    def test_bias_tracks_threshold(self, threshold, low, high):
        builder = ProgramBuilder()
        builder.jmp("main")
        entry = kernels.emit_branch_maze(builder, "k", threshold=threshold)
        builder.label("main")
        builder.li(kernels.RNG_REG, 99991)
        builder.li(11, 400)
        builder.call(entry)
        builder.halt()
        machine = FunctionalMachine(builder.build())
        outcomes = []

        def branch_hook(pc, next_pc, inst, taken):
            if inst.is_cond_branch and inst.opcode.name == "BLT":
                outcomes.append(taken)

        machine.run(100_000, branch_hook=branch_hook)
        rate = sum(outcomes) / len(outcomes)
        assert low <= rate <= high


class TestRecursive:
    def test_returns_and_balances_stack(self):
        machine = run_kernel(
            lambda b: kernels.emit_recursive(b, "k", work=1),
            {10: 12},
        )
        assert machine.registers[15] == 1
        assert machine.registers[30] == machine.program.stack_base


class TestIndirectDispatch:
    def test_calls_table_targets(self):
        builder = ProgramBuilder()
        builder.jmp("main")
        leaf_entries = []
        for leaf in range(4):
            index = builder.here()
            kernels.emit_leaf(builder, f"leaf_{leaf}")
            leaf_entries.append(index)
        entry = kernels.emit_indirect_dispatch(builder, "k")
        builder.label("main")
        builder.li(kernels.RNG_REG, 777)
        builder.li(10, BASE)
        builder.li(11, 3)
        builder.li(12, 20)
        builder.call(entry)
        builder.halt()

        memory = Memory()
        init_jump_table(memory, BASE, leaf_entries)
        machine = FunctionalMachine(builder.build(), memory)
        visited = set()
        machine.run(
            100_000,
            branch_hook=lambda pc, np_, inst, taken:
                visited.add(np_) if inst.is_call else None,
        )
        assert machine.halted
        assert visited & set(leaf_entries), "dispatch never reached a leaf"


class TestMatrixAccumulate:
    def test_weighted_sum(self):
        memory = Memory()
        memory.fill_words(BASE, [1] * 6)  # 2 rows x 3 cols of ones
        machine = run_kernel(
            lambda b: kernels.emit_matrix_accumulate(b, "k"),
            {10: BASE, 11: 2, 12: 3}, memory,
        )
        # Inner loop multiplies each element by the downward column
        # counter (3, 2, 1 per row): 2 rows x (3+2+1) = 12.
        assert machine.registers[15] == 12
