"""Differential fuzz: the batched interpreter against the scalar baseline.

The batched core (`FunctionalMachine.run_batch`) must be architecturally
indistinguishable from the scalar `step()` loop: same registers, pc,
memory image, retired count, halt flag, and the same observation-hook
call sequence — for every workload, chunk size, and hook configuration.
These tests drive both engines side by side over randomized programs
from all nine paper workload generators plus directed corner cases
(forced `step()` fallback via poisoned predecode columns, signed DIV
semantics, halted-machine checkpoints, tail-fraction validation).
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.source import tail_cutoff
from repro.functional import FunctionalMachine, to_signed
from repro.functional.checkpoint import FunctionalCheckpoint
from repro.functional.predecode import predecode_program
from repro.isa import Instruction, Opcode, Program
from repro.warmup import register_method, unregister_method
from repro.workloads import PAPER_WORKLOADS, build_workload

_MASK64 = (1 << 64) - 1
INT64_MIN = -(1 << 63)


class HookTrace:
    """Records every observation-hook call, in order, for comparison."""

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def mem_hook(self, pc, next_pc, address, is_store):
        self.events.append(("mem", pc, next_pc, address, bool(is_store)))

    def branch_hook(self, pc, next_pc, inst, taken):
        self.events.append(("br", pc, next_pc, inst.opcode, bool(taken)))

    def ifetch_hook(self, address):
        self.events.append(("ifetch", address))


def machine_state(machine: FunctionalMachine) -> tuple:
    return (
        machine.pc,
        machine.halted,
        machine.instructions_retired,
        tuple(machine.registers),
        dict(machine.memory._words),
    )


def run_differential(program, memory, *, seed: int, total: int) -> None:
    """Drive scalar and batched machines through identical chunked runs.

    Chunk sizes and hook configurations vary pseudo-randomly (including
    hookless chunks, which exercise the fetch-block continuity
    bookkeeping across hooked/hookless transitions); after every chunk
    the full architectural state must match, and at the end the hook
    traces must be identical element for element.
    """
    scalar = FunctionalMachine(program, memory.copy(), batched=False)
    batched = FunctionalMachine(program, memory.copy(), batched=True)
    assert scalar.batched is False and batched.batched is True
    scalar_trace, batched_trace = HookTrace(), HookTrace()
    rng = random.Random(seed)
    remaining = total
    while remaining > 0 and not scalar.halted:
        chunk = min(rng.choice((1, 3, 17, 257, 1024, 4096)), remaining)
        hooked = rng.random() < 0.7
        counts = []
        for machine, trace in ((scalar, scalar_trace),
                               (batched, batched_trace)):
            if hooked:
                counts.append(machine.run(
                    chunk,
                    mem_hook=trace.mem_hook,
                    branch_hook=trace.branch_hook,
                    ifetch_hook=trace.ifetch_hook,
                    ifetch_block_bytes=64,
                ))
            else:
                counts.append(machine.run(chunk))
        assert counts[0] == counts[1], "retired counts diverged"
        assert machine_state(scalar) == machine_state(batched), (
            f"architectural state diverged after a {chunk}-instruction "
            f"{'hooked' if hooked else 'hookless'} chunk"
        )
        remaining -= chunk
    assert scalar_trace.events == batched_trace.events, (
        "observation-hook call sequences diverged"
    )


class TestWorkloadFuzz:
    @pytest.mark.parametrize("name", PAPER_WORKLOADS)
    def test_batched_matches_scalar(self, name):
        workload = build_workload(name, mem_scale=1, seed=17)
        run_differential(workload.program, workload.memory,
                         seed=hash(name) & 0xFFFF, total=6000)

    @pytest.mark.parametrize("name", ("gcc", "mcf"))
    def test_single_step_chunks(self, name):
        """chunk=1 forces the batched engine through every boundary."""
        workload = build_workload(name, mem_scale=1, seed=3)
        scalar = FunctionalMachine(workload.program,
                                   workload.memory.copy(), batched=False)
        batched = FunctionalMachine(workload.program,
                                    workload.memory.copy(), batched=True)
        for _ in range(700):
            scalar.run(1)
            batched.run(1)
            assert machine_state(scalar) == machine_state(batched)


class TestForcedFallback:
    def test_poisoned_predecode_falls_back_to_step(self):
        """An immediate too wide for the int64 columns must poison its
        slot (step() fallback) without perturbing neighbouring spans."""
        huge = 1 << 70
        instructions = [
            Instruction(Opcode.LI, rd=1, imm=5),
            Instruction(Opcode.LI, rd=2, imm=huge),
            Instruction(Opcode.ADDI, rd=3, rs1=1, imm=7),
            Instruction(Opcode.ADD, rd=4, rs1=3, rs2=1),
            Instruction(Opcode.HALT),
        ]
        program = Program(instructions, name="poisoned")
        decoded = predecode_program(program)
        assert decoded.boundary[1], "oversized imm must become a boundary"
        assert decoded.ops[1] == -1, "oversized imm must poison its opcode"
        from repro.functional import Memory

        run_differential(program, Memory(), seed=1, total=10)
        machine = FunctionalMachine(program, Memory(), batched=True)
        machine.run(10)
        assert machine.halted
        assert machine.registers[2] == huge & _MASK64
        assert machine.registers[3] == 12
        assert machine.registers[4] == 17

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CORE", "off")
        workload = build_workload("gcc", mem_scale=1, seed=5)
        assert workload.make_machine().batched is False
        monkeypatch.setenv("REPRO_BATCH_CORE", "on")
        assert workload.make_machine().batched is True
        monkeypatch.delenv("REPRO_BATCH_CORE")
        assert workload.make_machine().batched is True


def _div_result(dividend: int, divisor: int, batched: bool) -> int:
    program = Program([
        Instruction(Opcode.DIV, rd=3, rs1=1, rs2=2),
        Instruction(Opcode.HALT),
    ], name="div")
    from repro.functional import Memory

    machine = FunctionalMachine(program, Memory(), batched=batched)
    machine.registers[1] = dividend & _MASK64
    machine.registers[2] = divisor & _MASK64
    machine.run(4)
    return to_signed(machine.registers[3])


class TestSignedDivision:
    @pytest.mark.parametrize("batched", (False, True))
    @pytest.mark.parametrize("dividend,divisor,expected", [
        (-7, 2, -3),     # truncates toward zero, not floor (-4)
        (7, -2, -3),
        (-7, -2, 3),
        (7, 2, 3),
        (1, -1, -1),
        (INT64_MIN + 1, 1, INT64_MIN + 1),
        (0, -5, 0),
        (5, 0, 0),       # paper-kernel convention: divide-by-zero yields 0
        (-5, 0, 0),
    ])
    def test_truncating_signed_division(self, dividend, divisor, expected,
                                        batched):
        assert _div_result(dividend, divisor, batched) == expected

    @pytest.mark.parametrize("batched", (False, True))
    def test_overflow_wraps_like_hardware(self, batched):
        # INT64_MIN / -1 overflows a 64-bit signed result; the two's
        # complement wraparound keeps the register at INT64_MIN.
        assert _div_result(INT64_MIN, -1, batched) == INT64_MIN


class TestHaltedCheckpoint:
    def _halted_machine(self) -> FunctionalMachine:
        program = Program([
            Instruction(Opcode.LI, rd=1, imm=9),
            Instruction(Opcode.HALT),
        ], name="halts")
        from repro.functional import Memory

        machine = FunctionalMachine(program, Memory())
        machine.run(10)
        assert machine.halted
        return machine

    def test_in_process_checkpoint_restores_halted(self):
        machine = self._halted_machine()
        checkpoint = machine.checkpoint()
        assert checkpoint.halted is True
        machine.halted = False  # simulate reuse of the same machine
        machine.restore(checkpoint)
        assert machine.halted is True
        # A restored halted machine must not resume past program end.
        assert machine.run(5) == 0
        assert machine.step().halted

    def test_functional_checkpoint_pickle_round_trip(self):
        machine = self._halted_machine()
        checkpoint = FunctionalCheckpoint.capture(machine)
        clone = pickle.loads(pickle.dumps(checkpoint))
        target = FunctionalMachine(machine.program, machine.memory.copy())
        assert target.halted is False
        clone.restore(target)
        assert target.halted is True
        assert target.run(5) == 0
        assert target.registers[1] == 9


class TestTailFractionValidation:
    @pytest.mark.parametrize("fraction", (0.0, -0.25, 1.0 + 1e-9, 2.0))
    def test_out_of_domain_fraction_raises(self, fraction):
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            tail_cutoff(100, fraction)

    def test_message_names_the_offending_value(self):
        with pytest.raises(ValueError, match="got 2.5"):
            tail_cutoff(10, 2.5)

    def test_boundaries_accepted(self):
        assert tail_cutoff(100, 1.0) == 0
        assert tail_cutoff(100, 0.25) == 75
        assert tail_cutoff(0, 0.5) == 0

    def test_log_tail_queries_validate(self):
        from repro.core.compaction import CompactedSkipRegionLog
        from repro.core.logging import SkipRegionLog

        raw = SkipRegionLog()
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            raw.memory_tail(0.0)
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            list(raw.iter_memory_reverse(1.5))
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            raw.memory_reverse_arrays(-1.0)
        compacted = CompactedSkipRegionLog(line_bytes=64)
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            list(compacted.iter_memory_reverse(0.0))
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            compacted.btb_claims_arrays(4.0)

    def test_cli_maps_fraction_error_to_exit_2(self, capsys):
        from repro.__main__ import main
        from repro.core import ReverseStateReconstruction

        register_method(
            "BadFraction",
            lambda: ReverseStateReconstruction(fraction=1.5),
        )
        try:
            code = main(["sample", "gcc", "--method", "BadFraction",
                         "--scale", "ci"])
        finally:
            unregister_method("BadFraction")
        assert code == 2
        captured = capsys.readouterr()
        assert "fraction must be in (0, 1]" in captured.err
        assert "1.5" in captured.err
