"""Unit tests for warm-up baselines: None, fixed period, SMARTS.

Key invariant: after a skip region, SMARTS-warmed microarchitectural
state must be identical to what continuous functional warming produces,
because SMARTS *is* continuous functional warming.
"""

import pytest

from repro.branch import BranchPredictor, PredictorConfig
from repro.cache import MemoryHierarchy, paper_hierarchy_config
from repro.warmup import (
    NoWarmup,
    FixedPeriodWarmup,
    SmartsWarmup,
    SimulationContext,
)
from repro.workloads import build_workload


def make_context(workload_name="twolf"):
    workload = build_workload(workload_name)
    return SimulationContext(
        machine=workload.make_machine(),
        hierarchy=MemoryHierarchy(paper_hierarchy_config(scale=16)),
        predictor=BranchPredictor(PredictorConfig(1024, 256, 8)),
    )


class TestNoWarmup:
    def test_advances_machine_without_touching_state(self):
        context = make_context()
        method = NoWarmup()
        method.bind(context)
        method.skip(5000)
        assert context.machine.instructions_retired == 5000
        assert context.hierarchy.total_updates() == 0
        assert context.predictor.total_updates() == 0
        assert method.cost.functional_instructions == 5000

    def test_flags(self):
        method = NoWarmup()
        assert not method.warms_cache
        assert not method.warms_predictor
        assert method.name == "None"

    def test_pre_cluster_returns_no_hook(self):
        method = NoWarmup()
        method.bind(make_context())
        assert method.pre_cluster() is None


class TestFixedPeriod:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            FixedPeriodWarmup(0.0)
        with pytest.raises(ValueError):
            FixedPeriodWarmup(1.5)
        with pytest.raises(ValueError):
            FixedPeriodWarmup(0.5, warm_cache=False, warm_predictor=False)

    def test_name_includes_percentage(self):
        assert FixedPeriodWarmup(0.2).name == "FP (20%)"
        assert FixedPeriodWarmup(0.8).name == "FP (80%)"

    def test_warms_only_the_tail(self):
        context = make_context()
        method = FixedPeriodWarmup(0.5)
        method.bind(context)
        method.skip(4000)
        full_context = make_context()
        full = FixedPeriodWarmup(1.0)
        full.bind(full_context)
        full.skip(4000)
        assert 0 < method.cost.cache_updates < full.cost.cache_updates
        assert 0 < method.cost.predictor_updates < full.cost.predictor_updates

    def test_architectural_state_matches_plain_execution(self):
        warm_context = make_context()
        method = FixedPeriodWarmup(0.5)
        method.bind(warm_context)
        method.skip(4000)
        cold_context = make_context()
        NoWarmup_method = NoWarmup()
        NoWarmup_method.bind(cold_context)
        NoWarmup_method.skip(4000)
        assert warm_context.machine.pc == cold_context.machine.pc
        assert warm_context.machine.registers == \
            cold_context.machine.registers

    def test_cache_only_variant(self):
        context = make_context()
        method = FixedPeriodWarmup(0.5, warm_predictor=False)
        method.bind(context)
        method.skip(2000)
        assert method.cost.cache_updates > 0
        assert method.cost.predictor_updates == 0

    def test_predictor_only_variant(self):
        context = make_context()
        method = FixedPeriodWarmup(0.5, warm_cache=False)
        method.bind(context)
        method.skip(2000)
        assert method.cost.cache_updates == 0
        assert method.cost.predictor_updates > 0


class TestSmarts:
    def test_names(self):
        assert SmartsWarmup().name == "S$BP"
        assert SmartsWarmup(True, False).name == "S$"
        assert SmartsWarmup(False, True).name == "SBP"

    def test_smarts_state_equals_continuous_warming(self):
        """SMARTS skip == running the machine with warm hooks directly."""
        smarts_context = make_context("vpr")
        method = SmartsWarmup()
        method.bind(smarts_context)
        method.skip(6000)

        manual_context = make_context("vpr")
        hierarchy = manual_context.hierarchy
        predictor = manual_context.predictor
        manual_context.machine.run(
            6000,
            mem_hook=lambda pc, np_, a, w: hierarchy.warm_access(a, w, False),
            branch_hook=lambda pc, np_, i, t: predictor.update(pc, i, t, np_),
            ifetch_hook=lambda a: hierarchy.warm_access(a, False, True),
            ifetch_block_bytes=hierarchy.l1i.config.line_bytes,
        )
        for name in ("l1i", "l1d", "l2"):
            assert getattr(smarts_context.hierarchy, name).state_fingerprint() \
                == getattr(manual_context.hierarchy, name).state_fingerprint()
        assert smarts_context.predictor.pht.counters == \
            manual_context.predictor.pht.counters
        assert smarts_context.predictor.pht.history == \
            manual_context.predictor.pht.history

    def test_cost_accounting_consistency(self):
        context = make_context()
        method = SmartsWarmup()
        method.bind(context)
        method.skip(3000)
        assert method.cost.cache_updates == context.hierarchy.total_updates()
        assert method.cost.predictor_updates == \
            context.predictor.total_updates()
        assert method.cost.functional_instructions == 3000

    def test_bind_resets_cost(self):
        context = make_context()
        method = SmartsWarmup()
        method.bind(context)
        method.skip(1000)
        method.bind(make_context())
        assert method.cost.functional_instructions == 0
