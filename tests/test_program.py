"""Unit tests for the Program container and basic-block analysis."""

import pytest

from repro.isa import Instruction, Opcode, Program, ProgramBuilder


def make_program(instructions, **kwargs):
    return Program(instructions, **kwargs)


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program([])

    def test_entry_out_of_range(self):
        with pytest.raises(ValueError):
            Program([Instruction(Opcode.NOP)], entry=5)

    def test_unresolved_branch_target_rejected(self):
        with pytest.raises(ValueError):
            Program([Instruction(Opcode.BEQ, rs1=1, rs2=2, target=-1),
                     Instruction(Opcode.HALT)])

    def test_out_of_range_jump_rejected(self):
        with pytest.raises(ValueError):
            Program([Instruction(Opcode.JMP, target=99),
                     Instruction(Opcode.HALT)])

    def test_indirect_jump_needs_no_target(self):
        Program([Instruction(Opcode.JR, rs1=1), Instruction(Opcode.HALT)])

    def test_ret_needs_no_target(self):
        Program([Instruction(Opcode.RET), Instruction(Opcode.HALT)])


class TestAddressing:
    def test_address_roundtrip(self):
        program = Program([Instruction(Opcode.NOP)] * 10, code_base=0x1000)
        for index in range(10):
            address = program.address_of(index)
            assert program.index_of_address(address) == index

    def test_addresses_are_4_bytes_apart(self):
        program = Program([Instruction(Opcode.NOP)] * 3)
        assert program.address_of(1) - program.address_of(0) == 4

    def test_len(self):
        assert len(Program([Instruction(Opcode.NOP)] * 7)) == 7


class TestBasicBlocks:
    def _loop_program(self):
        builder = ProgramBuilder()
        builder.label("top")
        builder.addi(1, 1, 1)
        builder.addi(2, 2, -1)
        builder.bne(2, 0, "top")
        builder.halt()
        return builder.build()

    def test_loop_has_two_blocks(self):
        blocks = self._loop_program().basic_blocks()
        assert len(blocks) == 2
        assert blocks[0].start == 0 and blocks[0].end == 3
        assert blocks[1].start == 3

    def test_block_successors(self):
        blocks = self._loop_program().basic_blocks()
        # Loop block: taken -> itself, fall-through -> halt block.
        assert set(blocks[0].successors) == {0, 3}

    def test_blocks_cover_program(self):
        program = self._loop_program()
        blocks = program.basic_blocks()
        covered = sorted(
            index for block in blocks for index in range(block.start, block.end)
        )
        assert covered == list(range(len(program)))

    def test_blocks_are_disjoint(self):
        blocks = self._loop_program().basic_blocks()
        seen = set()
        for block in blocks:
            for index in range(block.start, block.end):
                assert index not in seen
                seen.add(index)

    def test_leader_table_matches_blocks(self):
        program = self._loop_program()
        table = program.leader_table()
        for block_id, block in enumerate(program.basic_blocks()):
            assert table[block.start] == block_id

    def test_straight_line_single_block(self):
        program = Program(
            [Instruction(Opcode.NOP), Instruction(Opcode.NOP),
             Instruction(Opcode.HALT)]
        )
        blocks = program.basic_blocks()
        assert len(blocks) == 1
        assert len(blocks[0]) == 3

    def test_call_splits_block(self):
        builder = ProgramBuilder()
        builder.jmp("main")
        builder.label("fn")
        builder.ret()
        builder.label("main")
        builder.call("fn")
        builder.halt()
        blocks = builder.build().basic_blocks()
        starts = {block.start for block in blocks}
        assert 1 in starts  # fn is a target
        assert 2 in starts  # after jmp

    def test_workload_blocks_nonempty(self):
        from repro.workloads import build_workload
        program = build_workload("gcc").program
        blocks = program.basic_blocks()
        assert len(blocks) > 50
        assert all(len(block) > 0 for block in blocks)
