"""Tests for the benchmark-trajectory tracker (benchmarks/trajectory.py).

The module is stdlib-only and lives outside the package, so it is loaded
here by file path.
"""

import importlib.util
import json
import pathlib

import pytest

_MODULE_PATH = (pathlib.Path(__file__).resolve().parent.parent
                / "benchmarks" / "trajectory.py")
_spec = importlib.util.spec_from_file_location("trajectory", _MODULE_PATH)
trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trajectory)


def write_bench(root, tag, summary, bench=None, scale="bench"):
    payload = {"bench": bench or tag, "scale": scale, "summary": summary}
    (root / f"BENCH_{tag}.json").write_text(json.dumps(payload))


class TestDirectionInference:
    def test_cost_markers_win_over_ratio_suffix(self):
        assert trajectory.metric_direction("audit_on_overhead_ratio") \
            == "lower"
        assert trajectory.metric_direction("gate_check_microseconds") \
            == "lower"
        assert trajectory.metric_direction("mean_abs_cold_start_error") \
            == "lower"
        assert trajectory.metric_direction("pht_stale") == "lower"

    def test_benefit_markers(self):
        assert trajectory.metric_direction("peak_record_ratio") == "higher"
        assert trajectory.metric_direction("speedup_vs_smarts") == "higher"
        assert trajectory.metric_direction("mean_btb_agreement") == "higher"
        assert trajectory.metric_direction("pht_exact") == "higher"

    def test_unknown_names_are_not_gated(self):
        assert trajectory.metric_direction("num_clusters") == "none"
        assert not trajectory._is_regression("none", 10, 1, 0.15)


class TestCollect:
    def test_collect_normalises_bench_files(self, tmp_path):
        write_bench(tmp_path, "pr3", {"peak_record_ratio": 4.0,
                                      "identical_results": True})
        write_bench(tmp_path, "pr4", {"mean_btb_agreement": 1.0,
                                      "notes": "ignored-non-scalar"})
        collected = trajectory.collect(str(tmp_path))
        assert collected["schema"] == trajectory.SCHEMA
        assert set(collected["benches"]) == {"pr3", "pr4"}
        assert collected["benches"]["pr3"]["metrics"] == {
            "peak_record_ratio": 4.0, "identical_results": True,
        }
        # Non-scalar summary entries are dropped, not exported.
        assert "notes" not in collected["benches"]["pr4"]["metrics"]

    def test_collect_is_deterministic(self, tmp_path):
        write_bench(tmp_path, "a", {"x_ratio": 1.0})
        first = trajectory.collect(str(tmp_path))
        second = trajectory.collect(str(tmp_path))
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)


class TestGate:
    def baseline(self, tmp_path):
        write_bench(tmp_path, "pr3", {
            "peak_record_ratio": 4.0,
            "walk_step_ratio_full_log": 3.5,
            "identical_results": True,
        })
        return trajectory.collect(str(tmp_path))

    def test_identical_trajectories_pass(self, tmp_path):
        base = self.baseline(tmp_path)
        status, report = trajectory.gate(base, base, 0.15)
        assert status == 0
        assert "trajectory gate passed" in report

    def test_within_threshold_passes(self, tmp_path):
        base = self.baseline(tmp_path)
        current = json.loads(json.dumps(base))
        current["benches"]["pr3"]["metrics"]["peak_record_ratio"] = 3.6
        status, _ = trajectory.gate(current, base, 0.15)
        assert status == 0

    def test_injected_regression_fails_with_readable_diff(self, tmp_path):
        base = self.baseline(tmp_path)
        current = json.loads(json.dumps(base))
        current["benches"]["pr3"]["metrics"]["peak_record_ratio"] = 2.0
        status, report = trajectory.gate(current, base, 0.15)
        assert status == 2
        assert "REGRESSION pr3.peak_record_ratio" in report
        assert "4.0 -> 2.0" in report
        assert "min allowed" in report
        assert "FAILED" in report

    def test_boolean_must_not_flip_false(self, tmp_path):
        base = self.baseline(tmp_path)
        current = json.loads(json.dumps(base))
        current["benches"]["pr3"]["metrics"]["identical_results"] = False
        status, report = trajectory.gate(current, base, 0.15)
        assert status == 2
        assert "must stay true" in report

    def test_lower_is_better_regression(self, tmp_path):
        base = {"benches": {"pr4": {"metrics": {
            "mean_abs_cold_start_error": 0.002}}}}
        worse = {"benches": {"pr4": {"metrics": {
            "mean_abs_cold_start_error": 0.010}}}}
        status, report = trajectory.gate(worse, base, 0.15)
        assert status == 2
        assert "max allowed" in report
        improved = {"benches": {"pr4": {"metrics": {
            "mean_abs_cold_start_error": 0.0001}}}}
        status, _ = trajectory.gate(improved, base, 0.15)
        assert status == 0

    def test_new_benches_and_metrics_pass(self, tmp_path):
        base = self.baseline(tmp_path)
        current = json.loads(json.dumps(base))
        current["benches"]["pr9"] = {"metrics": {"anything_ratio": 0.1}}
        current["benches"]["pr3"]["metrics"]["brand_new_ratio"] = 0.5
        status, report = trajectory.gate(current, base, 0.15)
        assert status == 0
        assert "new bench 'pr9'" in report
        assert "not gated" in report

    def test_missing_bench_warns_without_failing(self, tmp_path):
        base = self.baseline(tmp_path)
        status, report = trajectory.gate({"benches": {}}, base, 0.15)
        assert status == 0
        assert "missing from current run" in report


class TestCli:
    def test_collect_and_gate_end_to_end(self, tmp_path, capsys):
        write_bench(tmp_path, "pr3", {"peak_record_ratio": 4.0})
        baseline_path = tmp_path / "TRAJECTORY.json"
        assert trajectory.main([
            "collect", "--root", str(tmp_path),
            "--output", str(baseline_path),
        ]) == 0
        assert trajectory.main([
            "gate", "--root", str(tmp_path),
            "--baseline", str(baseline_path),
        ]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_cli_exit_2_on_regression(self, tmp_path, capsys):
        write_bench(tmp_path, "pr3", {"peak_record_ratio": 4.0})
        baseline_path = tmp_path / "TRAJECTORY.json"
        trajectory.main(["collect", "--root", str(tmp_path),
                         "--output", str(baseline_path)])
        write_bench(tmp_path, "pr3", {"peak_record_ratio": 1.0})
        status = trajectory.main([
            "gate", "--root", str(tmp_path),
            "--baseline", str(baseline_path),
        ])
        assert status == 2
        assert "REGRESSION" in capsys.readouterr().out

    def test_repo_baseline_matches_committed_bench_files(self):
        """The committed TRAJECTORY.json is exactly what collect()
        produces from the committed BENCH_*.json files."""
        repo_root = _MODULE_PATH.parent.parent
        baseline_path = repo_root / "benchmarks" / "TRAJECTORY.json"
        committed = json.loads(baseline_path.read_text())
        collected = trajectory.collect(str(repo_root))
        assert collected == committed
