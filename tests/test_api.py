"""Tests for the stable facade (repro.api) and the method registry."""

import pytest

from repro.api import _resolve_design, run_matrix, simulate, true_run
from repro.harness import SCALES
from repro.sampling import SampledRunResult, SamplingRegimen
from repro.warmup import (
    NoWarmup,
    WarmupMethod,
    make_method,
    method_factory,
    register_method,
    registered_method_names,
    resolve_method,
    unregister_method,
)


class TestRegistry:
    def test_table2_names_registered(self):
        names = registered_method_names()
        for expected in ("None", "S$BP", "R$BP (100%)", "FP (20%)", "RBP"):
            assert expected in names

    def test_resolve_builds_fresh_instances(self):
        first = resolve_method("S$BP")
        second = resolve_method("S$BP")
        assert first is not second
        assert first.name == second.name == "S$BP"

    def test_canonical_names_case_insensitive(self):
        assert resolve_method("s$bp").name == "S$BP"
        assert resolve_method("  r$bp (100%) ").name == "R$BP (100%)"

    def test_headline_aliases(self):
        assert resolve_method("rsr").name == "R$BP (100%)"
        assert resolve_method("RSR").name == "R$BP (100%)"
        assert resolve_method("smarts").name == "S$BP"

    def test_unknown_name_readable_error(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_method("bogus")
        message = str(excinfo.value)
        assert "unknown method 'bogus'" in message
        assert "S$BP" in message  # the known names are listed

    def test_register_resolve_unregister_roundtrip(self):
        class Custom(NoWarmup):
            name = "CustomWarmup"

        register_method("CustomWarmup", Custom, aliases=("cw",))
        try:
            assert isinstance(resolve_method("CustomWarmup"), Custom)
            assert isinstance(resolve_method("cw"), Custom)
            assert "CustomWarmup" in registered_method_names()
        finally:
            unregister_method("CustomWarmup")
        assert "CustomWarmup" not in registered_method_names()
        with pytest.raises(ValueError):
            resolve_method("cw")  # aliases die with the registration

    def test_duplicate_registration_guarded(self):
        with pytest.raises(ValueError, match="already registered"):
            register_method("S$BP", NoWarmup)

    def test_replace_allows_override(self):
        original = method_factory("S$BP")
        register_method("S$BP", NoWarmup, replace=True)
        try:
            assert isinstance(resolve_method("S$BP"), NoWarmup)
        finally:
            register_method("S$BP", original, replace=True)

    def test_factory_must_be_callable(self):
        with pytest.raises(TypeError):
            register_method("NotCallable", object())

    def test_make_method_shim_still_works(self):
        method = make_method("R$BP (20%)")
        assert isinstance(method, WarmupMethod)
        assert method.name == "R$BP (20%)"


class TestResolveDesign:
    def test_preset_names(self):
        for name, scale in SCALES.items():
            assert _resolve_design(name) is scale

    def test_unknown_preset_readable_error(self):
        with pytest.raises(ValueError, match="unknown design 'huge'"):
            _resolve_design("huge")

    def test_instances_pass_through(self):
        scale = SCALES["ci"]
        assert _resolve_design(scale) is scale
        regimen = SamplingRegimen(
            total_instructions=10_000, num_clusters=2, cluster_size=100,
        )
        assert _resolve_design(regimen) is regimen

    def test_none_uses_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        assert _resolve_design(None) is SCALES["ci"]

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            _resolve_design(42)


class TestSimulate:
    def test_simulate_by_names(self):
        result = simulate("twolf", method="None", design="ci")
        assert isinstance(result, SampledRunResult)
        assert result.method_name == "None"
        assert result.estimate.mean > 0

    def test_simulate_accepts_method_instance(self):
        result = simulate("twolf", method=NoWarmup(), design="ci")
        assert result.method_name == "None"

    def test_simulate_matches_direct_run(self):
        from repro.sampling import SampledSimulator
        from repro.workloads import build_workload

        scale = SCALES["ci"]
        direct = SampledSimulator(
            build_workload("twolf", mem_scale=scale.mem_scale),
            scale.regimen(), scale.configs(),
            warmup_prefix=scale.warmup_prefix,
            detail_ramp=scale.detail_ramp,
        ).run(resolve_method("rsr"))
        facade = simulate("twolf", method="rsr", design="ci")
        assert facade.cluster_ipcs == direct.cluster_ipcs

    def test_simulate_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            simulate("twolf", method="bogus", design="ci")

    def test_simulate_bare_regimen(self):
        regimen = SamplingRegimen(
            total_instructions=12_000, num_clusters=3, cluster_size=200,
            seed=7,
        )
        result = simulate("twolf", method="None", design=regimen)
        assert len(result.cluster_ipcs) == 3


class TestMatrixAndTrueRun:
    def test_run_matrix_tiny_grid(self):
        grid = run_matrix(
            methods=["None", "rsr"], workloads=["twolf"], design="ci",
            jobs=1, cache="off",
        )
        assert set(grid) == {"twolf"}
        outcomes = grid["twolf"].outcomes
        # Alias resolves to its canonical Table 2 name in the results.
        assert set(outcomes) == {"None", "R$BP (100%)"}
        for outcome in outcomes.values():
            assert outcome.relative_error >= 0

    def test_run_matrix_validates_before_launch(self):
        with pytest.raises(ValueError, match="unknown method"):
            run_matrix(methods=["bogus"], workloads=["twolf"], design="ci")

    def test_run_matrix_needs_scale_design(self):
        regimen = SamplingRegimen(
            total_instructions=10_000, num_clusters=2, cluster_size=100,
        )
        with pytest.raises(TypeError):
            run_matrix(methods=["None"], design=regimen)

    def test_true_run_needs_scale_design(self):
        regimen = SamplingRegimen(
            total_instructions=10_000, num_clusters=2, cluster_size=100,
        )
        with pytest.raises(TypeError):
            true_run("twolf", design=regimen)

    def test_true_run_matches_harness(self):
        from repro.harness import true_run_for

        assert true_run("twolf", design="ci") is true_run_for(
            "twolf", SCALES["ci"]
        )


class TestTopLevelExports:
    def test_facade_importable_from_package_root(self):
        import repro

        assert repro.simulate is simulate
        assert repro.run_matrix is run_matrix
        assert repro.resolve_method is resolve_method
        assert repro.register_method is register_method
