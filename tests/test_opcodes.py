"""Unit tests for opcode classification and latency tables."""

from repro.isa.opcodes import (
    Opcode,
    EXECUTION_LATENCY,
    is_alu,
    is_conditional_branch,
    is_control,
    is_memory,
    LINK_REGISTER,
    STACK_POINTER,
    NUM_REGISTERS,
)


class TestClassification:
    def test_alu_register_ops(self):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV,
                   Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL,
                   Opcode.SRL, Opcode.SLT):
            assert is_alu(op)

    def test_alu_immediate_ops(self):
        for op in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                   Opcode.SLTI, Opcode.SLLI, Opcode.SRLI, Opcode.LI):
            assert is_alu(op)

    def test_memory_ops_are_not_alu(self):
        assert not is_alu(Opcode.LOAD)
        assert not is_alu(Opcode.STORE)

    def test_conditional_branches(self):
        for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            assert is_conditional_branch(op)
            assert is_control(op)

    def test_unconditional_control(self):
        for op in (Opcode.JMP, Opcode.JR, Opcode.CALL, Opcode.CALLR,
                   Opcode.RET):
            assert is_control(op)
            assert not is_conditional_branch(op)

    def test_memory_classification(self):
        assert is_memory(Opcode.LOAD)
        assert is_memory(Opcode.STORE)
        assert not is_memory(Opcode.ADD)
        assert not is_memory(Opcode.JMP)

    def test_nop_and_halt_are_plain(self):
        for op in (Opcode.NOP, Opcode.HALT):
            assert not is_control(op)
            assert not is_memory(op)
            assert not is_alu(op)


class TestLatencies:
    def test_every_opcode_has_a_latency(self):
        for op in Opcode:
            assert EXECUTION_LATENCY[op] >= 1

    def test_multiply_is_slower_than_add(self):
        assert EXECUTION_LATENCY[Opcode.MUL] > EXECUTION_LATENCY[Opcode.ADD]

    def test_divide_is_slowest(self):
        assert EXECUTION_LATENCY[Opcode.DIV] == max(
            EXECUTION_LATENCY.values()
        )


class TestRegisterConventions:
    def test_register_file_size(self):
        assert NUM_REGISTERS == 32

    def test_link_and_stack_registers_distinct(self):
        assert LINK_REGISTER != STACK_POINTER
        assert 0 < LINK_REGISTER < NUM_REGISTERS
        assert 0 < STACK_POINTER < NUM_REGISTERS

    def test_opcode_values_are_dense_and_stable(self):
        values = sorted(op.value for op in Opcode)
        assert values == list(range(len(values)))
