"""Tests for the disassembler, including assemble/disassemble round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.functional import FunctionalMachine
from repro.isa import (
    Instruction,
    Opcode,
    ProgramBuilder,
    assemble,
    disassemble,
    format_instruction,
)


class TestFormatInstruction:
    @pytest.mark.parametrize("inst,expected", [
        (Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3), "add r1, r2, r3"),
        (Instruction(Opcode.ADDI, rd=1, rs1=2, imm=-4), "addi r1, r2, -4"),
        (Instruction(Opcode.LI, rd=5, imm=99), "li r5, 99"),
        (Instruction(Opcode.LOAD, rd=1, rs1=2, imm=8), "load r1, r2, 8"),
        (Instruction(Opcode.STORE, rs1=2, rs2=1, imm=8),
         "store r1, r2, 8"),
        (Instruction(Opcode.BNE, rs1=1, rs2=0, target=7),
         "bne r1, r0, L7"),
        (Instruction(Opcode.JMP, target=3), "jmp L3"),
        (Instruction(Opcode.CALL, target=3), "call L3"),
        (Instruction(Opcode.JR, rs1=4), "jr r4"),
        (Instruction(Opcode.CALLR, rs1=4), "callr r4"),
        (Instruction(Opcode.RET), "ret"),
        (Instruction(Opcode.NOP), "nop"),
        (Instruction(Opcode.HALT), "halt"),
    ])
    def test_rendering(self, inst, expected):
        assert format_instruction(inst) == expected

    def test_custom_label(self):
        inst = Instruction(Opcode.JMP, target=9)
        assert format_instruction(inst, target_label="loop") == "jmp loop"


class TestDisassemble:
    def _sample(self):
        builder = ProgramBuilder()
        builder.li(1, 10)
        builder.label("top")
        builder.addi(1, 1, -1)
        builder.bne(1, 0, "top")
        builder.halt()
        return builder.build()

    def test_labels_emitted_at_targets(self):
        listing = disassemble(self._sample())
        assert "L1:" in listing
        assert "bne r1, r0, L1" in listing

    def test_partial_range(self):
        listing = disassemble(self._sample(), start=1, end=2)
        assert listing.count("\n") == 0
        assert "addi" in listing

    def test_entry_directive_for_nonzero_entry(self):
        builder = ProgramBuilder()
        builder.label("fn")
        builder.ret()
        builder.label("main")
        builder.call("fn")
        builder.halt()
        builder.entry("main")
        listing = disassemble(builder.build())
        assert ".entry L1" in listing

    def test_roundtrip_preserves_semantics(self):
        program = self._sample()
        rebuilt = assemble(disassemble(program))
        original = FunctionalMachine(program)
        copy = FunctionalMachine(rebuilt)
        original.run(100)
        copy.run(100)
        assert original.registers == copy.registers
        assert original.halted and copy.halted


@st.composite
def random_instructions(draw):
    kind = draw(st.sampled_from(["reg", "imm", "li", "mem", "misc"]))
    reg = st.integers(min_value=0, max_value=31)
    if kind == "reg":
        op = draw(st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.MUL,
                                   Opcode.AND, Opcode.OR, Opcode.XOR,
                                   Opcode.SLT]))
        return Instruction(op, rd=draw(reg), rs1=draw(reg), rs2=draw(reg))
    if kind == "imm":
        op = draw(st.sampled_from([Opcode.ADDI, Opcode.ANDI, Opcode.ORI,
                                   Opcode.XORI, Opcode.SLTI]))
        return Instruction(op, rd=draw(reg), rs1=draw(reg),
                           imm=draw(st.integers(-1000, 1000)))
    if kind == "li":
        return Instruction(Opcode.LI, rd=draw(reg),
                           imm=draw(st.integers(0, 1 << 32)))
    if kind == "mem":
        op = draw(st.sampled_from([Opcode.LOAD, Opcode.STORE]))
        if op is Opcode.LOAD:
            return Instruction(op, rd=draw(reg), rs1=draw(reg),
                               imm=draw(st.integers(-64, 64)))
        return Instruction(op, rs1=draw(reg), rs2=draw(reg),
                           imm=draw(st.integers(-64, 64)))
    op = draw(st.sampled_from([Opcode.NOP, Opcode.RET, Opcode.JR,
                               Opcode.CALLR]))
    if op in (Opcode.JR, Opcode.CALLR):
        return Instruction(op, rs1=draw(reg))
    return Instruction(op)


@given(st.lists(random_instructions(), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_disassemble_assemble_roundtrip(instructions):
    """Every non-control-flow-target instruction round-trips exactly."""
    from repro.isa import Program
    instructions = instructions + [Instruction(Opcode.HALT)]
    program = Program(instructions)
    rebuilt = assemble(disassemble(program))
    assert len(rebuilt) == len(program)
    for original, copy in zip(program.instructions, rebuilt.instructions):
        assert original == copy
