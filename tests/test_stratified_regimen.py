"""Tests for stratified cluster placement (paper §2's stratified sampling)."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import SampledSimulator, SamplingRegimen
from repro.warmup import SmartsWarmup
from repro.workloads import build_workload


class TestValidation:
    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            SamplingRegimen(100_000, 10, 1000, placement="quantum")

    def test_strata_always_fit_cluster(self):
        # The constructor's sample-size bound guarantees every stratum is
        # at least twice the cluster size.
        regimen = SamplingRegimen(100_000, 40, 1200,
                                  placement="stratified")
        starts = regimen.cluster_starts()
        assert len(starts) == 40


class TestStructure:
    def test_one_cluster_per_stratum(self):
        regimen = SamplingRegimen(100_000, 10, 1000,
                                  placement="stratified")
        starts = regimen.cluster_starts()
        assert len(starts) == 10
        for stratum, start in enumerate(starts):
            assert stratum * 10_000 <= start <= (stratum + 1) * 10_000 - 1000

    def test_deterministic(self):
        a = SamplingRegimen(100_000, 10, 1000, seed=3,
                            placement="stratified")
        b = SamplingRegimen(100_000, 10, 1000, seed=3,
                            placement="stratified")
        assert a.cluster_starts() == b.cluster_starts()

    def test_differs_from_uniform(self):
        uniform = SamplingRegimen(100_000, 10, 1000, seed=3)
        stratified = SamplingRegimen(100_000, 10, 1000, seed=3,
                                     placement="stratified")
        assert uniform.cluster_starts() != stratified.cluster_starts()


@given(st.integers(min_value=2, max_value=20),
       st.integers(min_value=50, max_value=500),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=100, deadline=None)
def test_stratified_starts_are_disjoint_and_in_range(num_clusters,
                                                     cluster_size, seed):
    total = num_clusters * cluster_size * 4
    regimen = SamplingRegimen(total, num_clusters, cluster_size, seed=seed,
                              placement="stratified")
    starts = regimen.cluster_starts()
    previous_end = 0
    for start in starts:
        assert start >= previous_end
        previous_end = start + cluster_size
    assert previous_end <= total


class TestVarianceReduction:
    def test_stratified_reduces_variance_under_linear_drift(self):
        """The textbook property, demonstrated on a synthetic linearly
        drifting metric: the sample-mean variance across placement seeds
        is lower for stratified placement."""
        total, clusters, size = 100_000, 10, 1000

        def sample_mean(placement, seed):
            regimen = SamplingRegimen(total, clusters, size, seed=seed,
                                      placement=placement)
            # Metric drifts linearly with position.
            return statistics.mean(
                start / total for start in regimen.cluster_starts()
            )

        spreads = {}
        for placement in ("uniform", "stratified"):
            means = [sample_mean(placement, seed) for seed in range(40)]
            spreads[placement] = statistics.pstdev(means)
        assert spreads["stratified"] < spreads["uniform"]

    def test_stratified_runs_through_controller(self):
        workload = build_workload("ammp")
        regimen = SamplingRegimen(40_000, 5, 800, seed=1,
                                  placement="stratified")
        result = SampledSimulator(workload, regimen).run(SmartsWarmup())
        assert len(result.cluster_ipcs) == 5
