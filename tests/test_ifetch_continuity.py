"""Regression tests for ifetch dedup continuity across run() calls.

The controller drives one logical instruction stream through many
``FunctionalMachine.run`` calls (prefix, per-gap skips, cold cluster
advances).  The ifetch filter exists because repeated fetches within one
cache block cannot change cache state; that argument is about the
*stream*, not about call boundaries.  Historically each ``run`` call
reset the filter, so every phase boundary that landed mid-block
re-reported a block the caches had already seen — inflating warm access
counts at every gap/cluster boundary.  The marker now lives on the
machine and carries across observed calls.
"""

import pytest

from repro.sampling import SimulatorConfigs, build_simulation
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload("ammp")


def _fetch_stream(machine, chunks, block_bytes=64):
    """Addresses reported by ifetch while running `chunks` back to back."""
    fetched = []
    for count in chunks:
        machine.run(count, ifetch_hook=fetched.append,
                    ifetch_block_bytes=block_bytes)
    return fetched


class TestSplitInvariance:
    @pytest.mark.parametrize("split", [1, 7, 50, 333])
    def test_two_calls_match_one(self, workload, split):
        """Splitting a run at any point must not change the fetch stream
        (the boundary is a phase boundary, not a fetch)."""
        total = 600
        split_stream = _fetch_stream(workload.make_machine(),
                                     [split, total - split])
        whole_stream = _fetch_stream(workload.make_machine(), [total])
        assert split_stream == whole_stream

    def test_many_gap_sized_calls_match_one(self, workload):
        """The controller's skip/advance cadence: many small observed
        runs report exactly the blocks of one continuous run."""
        chunks = [80] * 10
        split_stream = _fetch_stream(workload.make_machine(), chunks)
        whole_stream = _fetch_stream(workload.make_machine(),
                                     [sum(chunks)])
        assert split_stream == whole_stream

    def test_block_size_change_breaks_continuity(self, workload):
        """A marker recorded for one block geometry must not suppress
        the first fetch of a differently-sized block."""
        machine = workload.make_machine()
        machine.run(50, ifetch_hook=lambda address: None,
                    ifetch_block_bytes=64)
        fetched = []
        machine.run(1, ifetch_hook=fetched.append, ifetch_block_bytes=32)
        assert len(fetched) == 1


class TestContinuityBreaks:
    def test_hookless_run_invalidates_marker(self, workload):
        """Blocks fetched unobserved (the sharded cold advance) break
        continuity: the next observed run re-reports its first block."""
        machine = workload.make_machine()
        machine.run(50, ifetch_hook=lambda address: None)
        machine.run(50)  # unobserved: caches saw none of these fetches
        assert machine._last_fetch == (0, -1)
        fetched = []
        machine.run(1, ifetch_hook=fetched.append)
        assert len(fetched) == 1

    def test_zero_instruction_run_keeps_marker(self, workload):
        machine = workload.make_machine()
        machine.run(50, ifetch_hook=lambda address: None)
        marker = machine._last_fetch
        machine.run(0)
        assert machine._last_fetch == marker


class TestWarmAccessPinning:
    def test_warm_access_counts_across_gap_cluster_boundary(self, workload):
        """The ISSUE's regression: warm-access counts across a gap/cluster
        boundary equal those of an unsplit run.  Drives the real warming
        hooks (steady_state_prefix wiring) through a split boundary and
        pins the hierarchy/predictor update totals to the unsplit run's.
        """
        def warmed_counts(chunks):
            stack = build_simulation(workload, SimulatorConfigs())
            counts = {"mem": 0, "branch": 0, "ifetch": 0}

            def mem_hook(pc, next_pc, address, is_store):
                counts["mem"] += 1
                stack.hierarchy.warm_access(address, is_store, False)

            def branch_hook(pc, next_pc, inst, taken):
                counts["branch"] += 1
                stack.predictor.update(pc, inst, taken, next_pc)

            def ifetch_hook(address):
                counts["ifetch"] += 1
                stack.hierarchy.warm_access(address, False, True)

            for count in chunks:
                stack.machine.run(
                    count, mem_hook=mem_hook, branch_hook=branch_hook,
                    ifetch_hook=ifetch_hook,
                    ifetch_block_bytes=(
                        stack.hierarchy.l1i.config.line_bytes),
                )
            return counts

        # gap | cluster | gap | cluster, versus one continuous run.
        split = warmed_counts([700, 300, 700, 300])
        whole = warmed_counts([2_000])
        assert split == whole
        assert split["ifetch"] > 0
