"""Unit tests for the SimPoint pipeline: BBV profiling, selection, runs."""

import numpy as np
import pytest

from repro.simpoint import (
    profile_bbv,
    select_simpoints,
    run_simpoints,
)
from repro.warmup import SmartsWarmup
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload("art")


@pytest.fixture(scope="module")
def profile(workload):
    return profile_bbv(workload, total_instructions=40_000,
                       interval_size=2_000)


class TestBBVProfile:
    def test_interval_count(self, profile):
        assert profile.num_intervals == 20
        assert profile.instructions == 40_000

    def test_vectors_account_for_all_instructions(self, profile):
        # Each interval's weights sum to ~interval_size (boundary smear of
        # at most one straight-line run).
        sums = profile.vectors.sum(axis=1)
        assert np.all(np.abs(sums - 2_000) < 100)

    def test_normalised_rows_sum_to_one(self, profile):
        norms = profile.normalized().sum(axis=1)
        assert np.allclose(norms, 1.0)

    def test_nonzero_block_diversity(self, profile):
        # More than one basic block is exercised per interval.
        active = (profile.vectors > 0).sum(axis=1)
        assert np.all(active > 3)

    def test_phase_behaviour_visible(self, workload):
        """art alternates phases; BBVs of different phases must differ."""
        profile = profile_bbv(workload, 40_000, 2_000)
        vectors = profile.normalized()
        distances = np.linalg.norm(vectors - vectors[0], axis=1)
        assert distances.max() > 0.05

    def test_validation(self, workload):
        with pytest.raises(ValueError):
            profile_bbv(workload, 1_000, 0)
        with pytest.raises(ValueError):
            profile_bbv(workload, 100, 1_000)

    def test_deterministic(self, workload):
        a = profile_bbv(workload, 20_000, 2_000)
        b = profile_bbv(workload, 20_000, 2_000)
        assert np.array_equal(a.vectors, b.vectors)


class TestSelection:
    def test_selection_structure(self, workload):
        selection = select_simpoints(workload, 40_000, 2_000, max_points=5)
        assert 1 <= len(selection.points) <= 5
        weights = [point.weight for point in selection.points]
        assert sum(weights) == pytest.approx(1.0)
        for point in selection.points:
            assert 0 <= point.interval_index < 20

    def test_starts_sorted(self, workload):
        selection = select_simpoints(workload, 40_000, 2_000, max_points=5)
        starts = selection.starts()
        assert starts == sorted(starts)
        for start, _weight in starts:
            assert start % 2_000 == 0

    def test_representatives_belong_to_their_cluster(self, workload):
        selection = select_simpoints(workload, 40_000, 2_000, max_points=4)
        for point in selection.points:
            assert selection.clustering.assignments[point.interval_index] \
                == point.cluster

    def test_deterministic_selection(self, workload):
        a = select_simpoints(workload, 40_000, 2_000, max_points=4, seed=1)
        b = select_simpoints(workload, 40_000, 2_000, max_points=4, seed=1)
        assert [p.interval_index for p in a.points] == \
            [p.interval_index for p in b.points]


class TestSimPointRuns:
    def test_plain_run(self, workload):
        selection = select_simpoints(workload, 30_000, 1_500, max_points=4)
        result = run_simpoints(workload, selection)
        assert len(result.point_ipcs) == len(selection.points)
        assert result.ipc > 0
        assert result.method_name == "SimPoint+None"

    def test_warmed_run(self, workload):
        selection = select_simpoints(workload, 30_000, 1_500, max_points=4)
        result = run_simpoints(workload, selection, warmup=SmartsWarmup())
        assert result.method_name == "SimPoint+S$BP"
        assert result.cost.cache_updates > 0

    def test_weighted_ipc_is_convex_combination(self, workload):
        selection = select_simpoints(workload, 30_000, 1_500, max_points=4)
        result = run_simpoints(workload, selection)
        assert min(result.point_ipcs) <= result.ipc <= max(result.point_ipcs)

    def test_relative_error_api(self, workload):
        selection = select_simpoints(workload, 30_000, 1_500, max_points=3)
        result = run_simpoints(workload, selection)
        assert result.relative_error(result.ipc) == 0.0
