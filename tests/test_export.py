"""Tests for CSV/JSON experiment export."""

import csv
import io
import json

import pytest

from repro.core import ReverseStateReconstruction
from repro.harness import (
    ExperimentScale,
    matrix_rows,
    matrix_to_csv,
    matrix_to_json,
    run_matrix,
    save_matrix,
)
from repro.warmup import NoWarmup, SmartsWarmup


TINY = ExperimentScale("tiny-export", total_instructions=24_000,
                       num_clusters=4, cluster_size=600,
                       warmup_prefix=4_000)


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(
        lambda: [NoWarmup(), SmartsWarmup(),
                 ReverseStateReconstruction(0.2)],
        workload_names=("ammp",),
        scale=TINY,
    )


class TestRows:
    def test_one_row_per_cell(self, matrix):
        rows = matrix_rows(matrix)
        assert len(rows) == 3
        assert {row["method"] for row in rows} == \
            {"None", "S$BP", "R$BP (20%)"}

    def test_row_contents(self, matrix):
        row = next(r for r in matrix_rows(matrix) if r["method"] == "S$BP")
        assert row["workload"] == "ammp"
        assert row["true_ipc"] > 0
        assert row["estimated_ipc"] > 0
        assert isinstance(row["ci_pass"], bool)
        assert row["cache_updates"] > 0
        assert row["work_units"] > 0

    def test_compaction_columns_stable_when_untraced(self, matrix):
        # Untraced runs still carry the skip-log columns (as None) so
        # the CSV/JSON schema does not depend on tracing being enabled.
        for row in matrix_rows(matrix):
            for column in ("log_raw_records", "log_stored_records",
                           "log_stored_bytes", "log_dedup_ratio"):
                assert column in row
                assert row[column] is None

    def test_shard_columns_default_for_serial_runs(self, matrix):
        # Serial cells still carry the shard-provenance columns so the
        # CSV/JSON schema is identical with and without --cluster-jobs.
        for row in matrix_rows(matrix):
            assert row["sharded"] is False
            assert row["cluster_jobs"] == 1

    def test_compaction_columns_populated_when_traced(self, monkeypatch):
        from repro.telemetry import COLLECT_ENV_VAR

        monkeypatch.setenv(COLLECT_ENV_VAR, "1")
        traced = run_matrix(
            lambda: [ReverseStateReconstruction(1.0)],
            workload_names=("ammp",),
            scale=TINY,
        )
        row = matrix_rows(traced)[0]
        assert row["log_raw_records"] > 0
        assert 0 < row["log_stored_records"] <= row["log_raw_records"]
        assert row["log_stored_bytes"] > 0
        assert row["log_dedup_ratio"] >= 1.0


class TestFormats:
    def test_csv_parses_back(self, matrix):
        text = matrix_to_csv(matrix)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 3
        assert parsed[0]["workload"] == "ammp"

    def test_json_parses_back(self, matrix):
        payload = json.loads(matrix_to_json(matrix))
        assert len(payload) == 3
        assert all("relative_error" in row for row in payload)

    def test_empty_matrix_csv(self):
        assert matrix_to_csv({}) == ""


class TestSave:
    def test_save_csv(self, matrix, tmp_path):
        path = tmp_path / "results.csv"
        save_matrix(matrix, path)
        assert path.read_text().startswith("workload,")

    def test_save_json(self, matrix, tmp_path):
        path = tmp_path / "results.json"
        save_matrix(matrix, path)
        assert json.loads(path.read_text())

    def test_unknown_extension_rejected(self, matrix, tmp_path):
        with pytest.raises(ValueError):
            save_matrix(matrix, tmp_path / "results.xml")
