"""Property tests: compacted-log reconstruction == raw reverse scan.

The online compaction engine (repro/core/compaction.py) claims that every
ReconstructionSource query answers bit-identically to a reverse scan of
the raw stream, for every tail fraction and both reconstruction modes.
These tests drive randomized gap streams through both sources via the
same hook calls and compare the *reconstructed state* — cache tags, LRU
order and dirty bits, GHR, BTB, RAS, and PHT counters — plus the raw
equality of the direct queries.
"""

import random
from dataclasses import replace

import pytest

from repro.branch import BranchPredictor, PredictorConfig
from repro.cache import MemoryHierarchy, paper_hierarchy_config
from repro.cache.config import WritePolicy
from repro.core import (
    CompactedSkipRegionLog,
    ReverseBranchReconstructor,
    ReverseCacheReconstructor,
    ReverseStateReconstruction,
    SkipRegionLog,
    default_table,
)
from repro.sampling import SampledSimulator, SamplingRegimen
from repro.workloads import build_workload

FRACTIONS = (1.0, 0.8, 0.5, 0.33, 0.2)

PHT_ENTRIES = 64
BTB_ENTRIES = 16
RAS_ENTRIES = 4
HISTORY_BITS = PredictorConfig(PHT_ENTRIES, BTB_ENTRIES,
                               RAS_ENTRIES).history_bits


class FakeInst:
    def __init__(self, kind):
        self.is_cond_branch = kind == "cond"
        self.is_call = kind == "call"
        self.is_ret = kind == "ret"


INSTS = {kind: FakeInst(kind) for kind in ("cond", "call", "ret", "jump")}


def make_pair():
    """A raw and a compacted log sized to the shared test geometry."""
    raw = SkipRegionLog()
    compacted = CompactedSkipRegionLog(
        line_bytes=64,
        pht_entries=PHT_ENTRIES,
        history_bits=HISTORY_BITS,
        max_history=default_table().max_history,
        index_pht=True,
        store_conditionals=True,
    )
    return raw, compacted


def feed_random_stream(logs, rng, memory_events=600, branch_events=600):
    """Drive identical randomized hook calls into every log in `logs`."""
    mem_hooks = [(log.make_mem_hook(), log.make_ifetch_hook())
                 for log in logs]
    branch_hooks = [log.make_branch_hook() for log in logs]
    # Small pools force heavy aliasing: repeated blocks, repeated branch
    # pcs mapping onto the same PHT/BTB entries.
    addresses = [0x1000 + 64 * rng.randrange(24) + rng.randrange(64)
                 for _ in range(memory_events)]
    for address in addresses:
        roll = rng.random()
        if roll < 0.3:
            for _mem, ifetch in mem_hooks:
                ifetch(address)
        else:
            is_store = roll < 0.6
            for mem, _ifetch in mem_hooks:
                mem(0, 0, address, is_store)
    depth = 0
    for _ in range(branch_events):
        roll = rng.random()
        if roll < 0.5:
            kind, taken = "cond", rng.random() < 0.5
        elif roll < 0.7:
            kind, taken = "call", True
        elif roll < 0.9:
            # Orphan returns (popping past every logged call) included.
            kind, taken = "ret", True
        else:
            kind, taken = "jump", rng.random() < 0.9
        if kind == "call":
            depth += 1
        elif kind == "ret":
            depth = max(0, depth - 1)
        pc = 0x4000 + rng.randrange(40)
        target = 0x8000 + rng.randrange(40)
        for hook in branch_hooks:
            hook(pc, target, INSTS[kind], taken)
    return logs


def cache_state(cache):
    """Fingerprint plus per-set (tag, dirty) pairs — the full visible state."""
    dirty = tuple(
        frozenset(
            (cache.tags[set_index][way], cache.dirty[set_index][way])
            for way in range(cache.associativity)
            if cache.tags[set_index][way] is not None
        )
        for set_index in range(cache.num_sets)
    )
    return cache.state_fingerprint(), dirty


def predictor_state(predictor):
    return (
        tuple(predictor.pht.counters),
        predictor.pht.history,
        tuple(predictor.pht.reconstructed),
        tuple(predictor.btb.tags),
        tuple(predictor.btb.targets),
        tuple(predictor.ras.contents_from_top()),
    )


class TestCacheEquivalence:
    @pytest.mark.parametrize("fraction", FRACTIONS)
    @pytest.mark.parametrize("l1d_policy", [WritePolicy.WTNA,
                                            WritePolicy.WBWA])
    def test_reconstructed_hierarchy_identical(self, fraction, l1d_policy):
        rng = random.Random(int(fraction * 100)
                            + (1000 if l1d_policy is WritePolicy.WBWA else 0))
        raw, compacted = feed_random_stream(make_pair(), rng)
        config = paper_hierarchy_config(scale=64)
        config = replace(config, l1d=replace(config.l1d,
                                             write_policy=l1d_policy))
        states = []
        for source in (raw, compacted):
            hierarchy = MemoryHierarchy(config)
            ReverseCacheReconstructor(hierarchy).reconstruct(source, fraction)
            states.append(tuple(
                cache_state(level)
                for level in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2)
            ))
        assert states[0] == states[1]

    def test_compacted_scans_fewer_references(self):
        rng = random.Random(7)
        raw, compacted = feed_random_stream(make_pair(), rng)
        config = paper_hierarchy_config(scale=64)
        stats = []
        for source in (raw, compacted):
            reconstructor = ReverseCacheReconstructor(MemoryHierarchy(config))
            stats.append(reconstructor.reconstruct(source, 1.0))
        assert stats[1].scanned < stats[0].scanned
        assert stats[1].applied == stats[0].applied


class TestBranchEquivalence:
    @pytest.mark.parametrize("fraction", FRACTIONS)
    def test_direct_queries_identical(self, fraction):
        rng = random.Random(int(fraction * 100))
        raw, compacted = feed_random_stream(make_pair(), rng)
        assert (raw.recent_conditional_outcomes(fraction, HISTORY_BITS)
                == compacted.recent_conditional_outcomes(fraction,
                                                         HISTORY_BITS))
        for capacity in (1, RAS_ENTRIES, 64):
            assert (raw.ras_tail_contents(fraction, capacity)
                    == compacted.ras_tail_contents(fraction, capacity))
        assert (raw.conditional_history(fraction, HISTORY_BITS)
                == compacted.conditional_history(fraction, HISTORY_BITS))

    @pytest.mark.parametrize("fraction", FRACTIONS)
    @pytest.mark.parametrize("mode", ["eager", "on_demand"])
    def test_reconstructed_predictor_identical(self, fraction, mode):
        rng = random.Random(int(fraction * 100)
                            + (1000 if mode == "eager" else 0))
        raw, compacted = feed_random_stream(make_pair(), rng)
        demand_entries = [rng.randrange(PHT_ENTRIES) for _ in range(40)]
        states = []
        writes = []
        for source in (raw, compacted):
            predictor = BranchPredictor(
                PredictorConfig(PHT_ENTRIES, BTB_ENTRIES, RAS_ENTRIES))
            reconstructor = ReverseBranchReconstructor(predictor)
            reconstructor.prepare(source, fraction)
            if mode == "on_demand":
                # The same probe sequence a hot cluster would issue,
                # followed by the post-cluster residual drain.
                for entry in demand_entries:
                    reconstructor.demand(entry)
            reconstructor.drain()
            states.append(predictor_state(predictor))
            writes.append(reconstructor.counter_writes)
        assert states[0] == states[1]
        assert writes[0] == writes[1]

    def test_window_mode_walks_less(self):
        """At full fraction the compacted source serves bounded windows,
        so a sparse demand sequence walks far fewer log steps."""
        rng = random.Random(99)
        # Long enough that entries see far more outcomes than the
        # inference window can consume — the regime compaction targets.
        raw, compacted = feed_random_stream(make_pair(), rng,
                                            branch_events=6000)
        steps = []
        for source in (raw, compacted):
            predictor = BranchPredictor(
                PredictorConfig(PHT_ENTRIES, BTB_ENTRIES, RAS_ENTRIES))
            reconstructor = ReverseBranchReconstructor(predictor)
            reconstructor.prepare(source, 1.0)
            reconstructor.demand(0)
            reconstructor.drain()
            steps.append(reconstructor.log_walk_steps)
        assert steps[1] < steps[0]


class TestRasEdgeCases:
    def test_deep_nesting_and_orphans(self):
        """Many randomized call/return shapes across every cutoff."""
        for seed in range(20):
            rng = random.Random(seed)
            raw, compacted = make_pair()
            hooks = [raw.make_branch_hook(), compacted.make_branch_hook()]
            for position in range(80):
                kind = rng.choice(("call", "call", "ret", "cond", "jump"))
                for hook in hooks:
                    hook(0x4000 + position, 0x8000 + position,
                         INSTS[kind], True)
            for fraction in (1.0, 0.9, 0.7, 0.5, 0.3, 0.1, 0.05):
                for capacity in (1, 2, 4, 8, 100):
                    assert (raw.ras_tail_contents(fraction, capacity)
                            == compacted.ras_tail_contents(fraction,
                                                           capacity)), (
                        f"seed={seed} fraction={fraction} "
                        f"capacity={capacity}")


class TestEndToEndEquivalence:
    REGIMEN = SamplingRegimen(total_instructions=24_000, num_clusters=4,
                              cluster_size=600, seed=5)

    @pytest.mark.parametrize("fraction", [1.0, 0.4])
    @pytest.mark.parametrize("on_demand", [True, False])
    def test_sampled_run_identical(self, fraction, on_demand):
        simulator = SampledSimulator(build_workload("twolf"), self.REGIMEN)
        results = [
            simulator.run(ReverseStateReconstruction(
                fraction, on_demand=on_demand, source=kind))
            for kind in ("raw", "compacted")
        ]
        assert results[0].cluster_ipcs == results[1].cluster_ipcs
        assert results[0].cost.as_dict() == results[1].cost.as_dict()

    def test_compacted_stores_fewer_records(self):
        simulator = SampledSimulator(build_workload("gcc"), self.REGIMEN)
        peaks = {}
        for kind in ("raw", "compacted"):
            method = ReverseStateReconstruction(1.0, source=kind)
            simulator.run(method)
            peaks[kind] = method.log.peak_stored_records
        assert 0 < peaks["compacted"] < peaks["raw"]


class TestSourceLifecycle:
    def test_clear_preserves_hook_bindings(self):
        """clear() must empty the captured containers in place — hooks
        installed before a clear must keep feeding the same source."""
        _raw, compacted = make_pair()
        mem = compacted.make_mem_hook()
        branch = compacted.make_branch_hook()
        mem(0, 0, 0x1000, False)
        branch(0x4000, 0x8000, INSTS["cond"], True)
        compacted.clear()
        assert compacted.record_count() == 0
        assert compacted.stored_records() == 0
        mem(0, 0, 0x2000, True)
        branch(0x4004, 0x8004, INSTS["call"], True)
        assert compacted.memory_record_count() == 1
        assert compacted.branch_record_count() == 1
        assert list(compacted.iter_memory_reverse(1.0))
        assert compacted.ras_tail_contents(1.0, 4) == [0x4005]

    def test_peaks_updated_at_clear(self):
        _raw, compacted = feed_random_stream(
            make_pair(), random.Random(3), memory_events=200,
            branch_events=200)
        expected = compacted.stored_records()
        compacted.clear()
        assert compacted.peak_stored_records == expected
        assert compacted.peak_stored_bytes > 0
