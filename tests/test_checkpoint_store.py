"""Tests for the Phase A checkpoint store (repro.store).

Covers the store engine itself (atomic serialization helpers, key
discipline, manifest cross-checks, gc), the pipeline's read-through
integration (cold vs warm bit-identity for IPCs, the full WarmupCost
ledger, per-cluster gap logs, and audit output across raw/compacted
sources), corruption degradation (truncated blob, tampered manifest,
geometry-tampered shards all re-scan with identical results), the
streaming fold's ordering guarantees (adversarial completion order,
executors without a streaming hook, duplicate deliveries, every
registered backend), and the options/CLI/livepoints plumbing around it.
"""

import dataclasses
import json
import os
import pickle

import pytest

from repro.core import ReverseStateReconstruction
from repro.core.source import resolved_source_kind
from repro.harness.executor import (
    Executor,
    register_executor,
    registered_executor_names,
    unregister_executor,
)
from repro.sampling import SampledSimulator, SamplingRegimen, SimulatorConfigs
from repro.store import (
    STORE_ENV_VAR,
    CheckpointStore,
    CorruptEntryError,
    default_store_dir,
    functional_code_version,
    livepoint_store_key,
    resolve_store,
    shard_store_key,
)
from repro.store.serialization import (
    atomic_write_bytes,
    atomic_write_json,
    blob_digest,
    digest_key,
    evict_lru,
    read_json,
    read_pickle,
    reset_warnings,
    safe_read_pickle,
    warn_once,
)
from repro.warmup import SmartsWarmup
from repro.warmup.base import WarmupMethod
from repro.workloads import build_workload

REGIMEN = SamplingRegimen(total_instructions=24_000, num_clusters=4,
                          cluster_size=600, seed=7)
PREFIX = 2_000
RAMP = 64


@pytest.fixture(scope="module")
def workload():
    return build_workload("ammp")


def _simulator(workload, **kwargs):
    kwargs.setdefault("warmup_prefix", PREFIX)
    kwargs.setdefault("detail_ramp", RAMP)
    return SampledSimulator(workload, REGIMEN, **kwargs)


def _run(workload, **kwargs):
    return _simulator(workload, cluster_jobs=2).run(
        ReverseStateReconstruction(0.3, **kwargs))


def _shard_blob(root):
    blobs = list(root.glob("shards/*/*.pkl"))
    assert len(blobs) == 1, blobs
    return blobs[0]


# ---------------------------------------------------------------------------
# serialization helpers
# ---------------------------------------------------------------------------


class TestSerializationHelpers:
    def test_atomic_write_bytes_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "entry.pkl"
        assert atomic_write_bytes(path, b"payload") == 7
        assert path.read_bytes() == b"payload"
        # No temp-file droppings survive a successful write.
        assert [p.name for p in path.parent.iterdir()] == ["entry.pkl"]

    def test_atomic_write_json_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        atomic_write_json(path, {"b": 2, "a": 1})
        assert read_json(path) == {"a": 1, "b": 2}

    def test_read_json_non_mapping_is_none(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        assert read_json(path) is None

    def test_read_pickle_corrupt_raises(self, tmp_path):
        path = tmp_path / "bad.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.raises(CorruptEntryError):
            read_pickle(path)

    def test_safe_read_pickle_missing_is_silent(self, tmp_path, capsys):
        value, payload = safe_read_pickle(tmp_path / "absent.pkl")
        assert value is None and payload == b""
        assert capsys.readouterr().err == ""

    def test_safe_read_pickle_corrupt_warns_once(self, tmp_path, capsys):
        reset_warnings()
        path = tmp_path / "bad.pkl"
        path.write_bytes(b"garbage")
        for _ in range(2):
            value, _ = safe_read_pickle(path, category="test entry")
            assert value is None
        err = capsys.readouterr().err
        assert err.count("treated as a miss") == 1

    def test_warn_once_registry_and_reset(self, capsys):
        reset_warnings()
        assert warn_once("cat", "key", "message one") is True
        assert warn_once("cat", "key", "message two") is False
        reset_warnings()
        assert warn_once("cat", "key", "message three") is True
        err = capsys.readouterr().err
        assert "message one" in err and "message three" in err
        assert "message two" not in err

    def test_digest_key_is_order_independent(self):
        assert digest_key({"a": 1, "b": [2, 3]}) == \
            digest_key({"b": [2, 3], "a": 1})
        assert digest_key({"a": 1}) != digest_key({"a": 2})

    def test_evict_lru_removes_oldest_first(self, tmp_path):
        for name, age in (("old", 100), ("mid", 50), ("new", 10)):
            path = tmp_path / f"{name}.pkl"
            path.write_bytes(b"x" * 10)
            stamp = 1_000_000 - age
            os.utime(path, (stamp, stamp))
        removed = evict_lru(tmp_path, 20, "*.pkl")
        assert [p.stem for p in removed] == ["old"]
        assert sorted(p.stem for p in tmp_path.glob("*.pkl")) == \
            ["mid", "new"]

    def test_evict_lru_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match=">= 0"):
            evict_lru(tmp_path, -1)


# ---------------------------------------------------------------------------
# key discipline
# ---------------------------------------------------------------------------


class TestStoreKeys:
    def _identity(self):
        return ReverseStateReconstruction(0.3).store_identity()

    def _key(self, workload, configs=None, **overrides):
        kwargs = {"warmup_prefix": PREFIX, "detail_ramp": RAMP,
                  "method_identity": self._identity()}
        kwargs.update(overrides)
        return shard_store_key(workload, REGIMEN,
                               configs or SimulatorConfigs(), **kwargs)

    def test_core_config_is_absent_from_the_key(self, workload):
        """Phase A is timing-independent: core-parameter sweeps must hit."""
        base = SimulatorConfigs()
        swept = dataclasses.replace(
            base, core=dataclasses.replace(
                base.core, rob_entries=base.core.rob_entries * 2))
        assert self._key(workload, base) == self._key(workload, swept)

    def test_sampling_geometry_changes_the_key(self, workload):
        base = self._key(workload)
        assert self._key(workload, warmup_prefix=PREFIX + 1) != base
        assert self._key(workload, detail_ramp=RAMP + 1) != base

    def test_method_identity_changes_the_key(self, workload):
        identity = self._identity()
        other = dict(identity, fraction=identity["fraction"] / 2)
        assert self._key(workload, method_identity=other) != \
            self._key(workload)

    def test_source_kind_changes_the_key(self, workload):
        raw = ReverseStateReconstruction(0.3, source="raw").store_identity()
        compacted = ReverseStateReconstruction(
            0.3, source="compacted").store_identity()
        assert raw["source"] == "raw"
        assert compacted["source"] == "compacted"
        assert self._key(workload, method_identity=raw) != \
            self._key(workload, method_identity=compacted)

    def test_livepoint_key_differs_from_shard_key(self, workload):
        livepoint = livepoint_store_key(
            workload, REGIMEN, SimulatorConfigs(), warmup_prefix=PREFIX,
            method_identity={"method": "SmartsWarmup"})
        assert livepoint != self._key(workload)

    def test_functional_code_version_shape(self):
        version = functional_code_version()
        assert len(version) == 16
        int(version, 16)  # hex digest prefix

    def test_base_method_is_not_storable(self):
        assert WarmupMethod().store_identity() is None
        assert SmartsWarmup().store_identity() is None

    def test_callable_source_is_not_storable(self):
        method = ReverseStateReconstruction(0.3, source=_raw_source_factory)
        assert method.store_identity() is None

    def test_resolved_source_kind(self, monkeypatch):
        assert resolved_source_kind("raw") == "raw"
        assert resolved_source_kind(_raw_source_factory) is None
        monkeypatch.delenv("REPRO_LOG_COMPACTION", raising=False)
        assert resolved_source_kind("auto") == "compacted"
        monkeypatch.setenv("REPRO_LOG_COMPACTION", "raw")
        assert resolved_source_kind("auto") == "raw"


def _raw_source_factory():
    from repro.core.logging import SkipRegionLog

    return SkipRegionLog()


# ---------------------------------------------------------------------------
# the store engine
# ---------------------------------------------------------------------------


class TestCheckpointStore:
    @pytest.fixture()
    def store(self, tmp_path):
        reset_warnings()
        return CheckpointStore(tmp_path / "store")

    def test_round_trip_with_expect(self, store):
        store.put("ab" + "0" * 62, {"value": 7}, meta={"clusters": 4})
        value = store.get("ab" + "0" * 62, expect={"clusters": 4})
        assert value == {"value": 7}
        assert store.stats.hits == 1
        assert store.stats.writes == 1
        assert store.stats.bytes_read > 0

    def test_missing_entry_is_a_silent_miss(self, store, capsys):
        assert store.get("cd" + "0" * 62) is None
        assert store.stats.misses == 1
        assert store.stats.corrupt == 0
        assert capsys.readouterr().err == ""

    def test_expect_mismatch_degrades_to_miss(self, store, capsys):
        key = "ab" + "0" * 62
        store.put(key, [1, 2], meta={"clusters": 4})
        assert store.get(key, expect={"clusters": 5}) is None
        assert store.stats.corrupt == 1
        assert "expected 5" in capsys.readouterr().err

    def test_truncated_blob_degrades_to_miss(self, store, capsys):
        key = "ab" + "0" * 62
        store.put(key, list(range(100)))
        blob = store._blob_path(key, "shards")
        blob.write_bytes(blob.read_bytes()[:10])
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert "digest mismatch" in capsys.readouterr().err

    def test_missing_manifest_degrades_to_miss(self, store):
        key = "ab" + "0" * 62
        store.put(key, "value")
        store._manifest_path(key, "shards").unlink()
        assert store.get(key) is None
        assert store.stats.corrupt == 1

    def test_unpicklable_blob_with_valid_digest_degrades(self, store):
        key = "ab" + "0" * 62
        blob = b"not a pickle at all"
        atomic_write_bytes(store._blob_path(key, "shards"), blob)
        atomic_write_json(store._manifest_path(key, "shards"),
                          {"digest": blob_digest(blob)})
        assert store.get(key) is None
        assert store.stats.corrupt == 1

    def test_provenance_recorded_under_run_id(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_ID", "prov-test")
        store.put("ab" + "0" * 62, "value", meta={"clusters": 4})
        lines = (store.root / "runs" / "prov-test.jsonl").read_text()
        entry = json.loads(lines.strip())
        assert entry["run_id"] == "prov-test"
        assert entry["clusters"] == 4
        assert entry["kind"] == "shards"

    def test_no_provenance_without_run_id(self, store, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_ID", raising=False)
        store.put("ab" + "0" * 62, "value")
        assert not (store.root / "runs").exists()

    def test_gc_leaves_provenance_and_pairs_manifests(self, store,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_RUN_ID", "gc-test")
        for index in range(3):
            store.put(f"{index:02x}" + "0" * 62, list(range(50)))
        assert store.entry_count() == 3
        removed = store.gc(0)
        assert len(removed) == 3
        assert store.entry_count() == 0
        assert not list(store.root.glob("shards/*/*.json"))
        # Run provenance survives eviction.
        assert (store.root / "runs" / "gc-test.jsonl").exists()
        assert store.total_bytes() > 0

    def test_gc_negative_budget_rejected(self, store):
        with pytest.raises(ValueError, match=">= 0"):
            store.gc(-1)

    def test_contains_and_clear(self, store):
        key = "ab" + "0" * 62
        assert key not in store
        store.put(key, "value")
        assert key in store
        assert store.clear() == 1
        assert key not in store

    def test_resolve_store_spellings(self, monkeypatch, tmp_path):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert resolve_store() is None
        assert resolve_store("off") is None
        assert resolve_store("0") is None
        assert resolve_store("on").root == default_store_dir()
        assert resolve_store(str(tmp_path)).root == tmp_path
        assert resolve_store(None, default="on").root == default_store_dir()
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path))
        assert resolve_store().root == tmp_path
        monkeypatch.setenv(STORE_ENV_VAR, "off")
        assert resolve_store() is None
        existing = CheckpointStore(tmp_path)
        assert resolve_store(existing) is existing


# ---------------------------------------------------------------------------
# pipeline read-through: cold vs warm bit-identity
# ---------------------------------------------------------------------------


class TestReadThrough:
    @pytest.fixture()
    def store_env(self, monkeypatch, tmp_path):
        root = tmp_path / "checkpoints"
        monkeypatch.setenv(STORE_ENV_VAR, str(root))
        monkeypatch.delenv("REPRO_CLUSTER_JOBS", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        reset_warnings()
        return root

    def test_cold_run_misses_then_populates(self, workload, store_env):
        run = _run(workload)
        assert run.extra["checkpoint_store"] == "miss"
        blob = _shard_blob(store_env)
        manifest = read_json(blob.with_suffix(".json"))
        assert manifest["workload"] == "ammp"
        assert manifest["clusters"] == REGIMEN.num_clusters
        assert manifest["warmup_prefix"] == PREFIX
        assert manifest["detail_ramp"] == RAMP
        assert manifest["digest"] == blob_digest(blob.read_bytes())

    @pytest.mark.parametrize("source", ["raw", "compacted"])
    def test_warm_run_bit_identical(self, workload, store_env, source):
        """Acceptance: a store hit reproduces the cold run exactly —
        per-cluster IPCs, the estimate, and every WarmupCost component
        (the stored shards replay their cold-scan gap-log deltas)."""
        cold = _run(workload, source=source)
        warm = _run(workload, source=source)
        assert cold.extra["checkpoint_store"] == "miss"
        assert warm.extra["checkpoint_store"] == "hit"
        assert warm.cluster_ipcs == cold.cluster_ipcs
        assert warm.cost.as_dict() == cold.cost.as_dict()
        assert warm.estimate.mean == cold.estimate.mean
        assert warm.estimate.error_bound == cold.estimate.error_bound

    def test_raw_and_compacted_store_separately(self, workload, store_env):
        _run(workload, source="raw")
        _run(workload, source="compacted")
        assert len(list(store_env.glob("shards/*/*.pkl"))) == 2

    def test_warm_run_matches_serial_cost_ledger(self, workload, store_env):
        """The serial == sharded cost contract survives the store: a
        warm sharded run carries the identical ledger a serial walk
        (which never consults the store) produces."""
        _run(workload)  # populate
        warm = _run(workload)
        serial = _simulator(workload).run(ReverseStateReconstruction(0.3))
        assert warm.extra["checkpoint_store"] == "hit"
        assert warm.cost.as_dict() == serial.cost.as_dict()

    def test_gap_logs_and_audit_identical(self, workload, store_env,
                                          monkeypatch, tmp_path):
        """Per-cluster trace records (geometry + gap-log cost shares) and
        the audit JSON rows are bit-identical between cold and warm."""
        from repro.harness.reporting import audit_rows

        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_AUDIT", "1")
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
        fields = ("start", "gap", "ramp", "instructions",
                  "functional_instructions", "log_records")

        def rows(run):
            records = [r for r in run.extra["telemetry"].trace_records
                       if "gap" in r]
            records.sort(key=lambda r: r["cluster"])
            return [tuple(r[name] for name in fields) for r in records]

        cold = _run(workload)
        warm = _run(workload)
        assert warm.extra["checkpoint_store"] == "hit"
        assert rows(warm) == rows(cold)
        assert audit_rows(warm.extra["telemetry"]) == \
            audit_rows(cold.extra["telemetry"])

    def test_core_parameter_sweep_hits(self, workload, store_env):
        """The whole point: varying only the core config reuses the
        stored Phase A scan."""
        _run(workload)  # populate under the default core
        base = SimulatorConfigs()
        swept = dataclasses.replace(
            base, core=dataclasses.replace(
                base.core, rob_entries=base.core.rob_entries * 2))
        warm = _simulator(workload, cluster_jobs=2, configs=swept).run(
            ReverseStateReconstruction(0.3))
        assert warm.extra["checkpoint_store"] == "hit"
        assert len(warm.cluster_ipcs) == REGIMEN.num_clusters

    def test_unstorable_method_bypasses_the_store(self, workload,
                                                  store_env):
        """A callable source has no stable identity, so the run executes
        store-less even with the environment configured."""
        run = _run(workload, source=_raw_source_factory)
        assert "checkpoint_store" not in run.extra
        assert not list(store_env.glob("shards/*/*.pkl"))

    def test_no_store_env_means_no_store_flag(self, workload, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        run = _run(workload)
        assert "checkpoint_store" not in run.extra


# ---------------------------------------------------------------------------
# corruption degrades to a re-scan
# ---------------------------------------------------------------------------


class TestCorruptionDegrades:
    @pytest.fixture()
    def populated(self, workload, monkeypatch, tmp_path):
        root = tmp_path / "checkpoints"
        monkeypatch.setenv(STORE_ENV_VAR, str(root))
        monkeypatch.delenv("REPRO_CLUSTER_JOBS", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        reset_warnings()
        cold = _run(workload)
        assert cold.extra["checkpoint_store"] == "miss"
        return root, cold

    def _assert_degrades(self, workload, cold, capsys):
        warm = _run(workload)
        assert warm.extra["checkpoint_store"] == "miss"
        assert warm.cluster_ipcs == cold.cluster_ipcs
        assert warm.cost.as_dict() == cold.cost.as_dict()
        assert "corrupt checkpoint-store entry" in capsys.readouterr().err
        return warm

    def test_truncated_blob_rescans_identically(self, workload, populated,
                                                capsys):
        root, cold = populated
        blob = _shard_blob(root)
        blob.write_bytes(blob.read_bytes()[:32])
        self._assert_degrades(workload, cold, capsys)
        # The re-scan re-captured a valid entry: the next run hits again.
        assert _run(workload).extra["checkpoint_store"] == "hit"

    def test_tampered_manifest_rescans_identically(self, workload,
                                                   populated, capsys):
        root, cold = populated
        manifest_path = _shard_blob(root).with_suffix(".json")
        manifest = read_json(manifest_path)
        manifest["clusters"] = manifest["clusters"] + 1
        atomic_write_json(manifest_path, manifest)
        self._assert_degrades(workload, cold, capsys)

    def test_geometry_tampered_shards_rescan_identically(self, workload,
                                                         populated,
                                                         capsys):
        """A blob that passes every manifest cross-check but whose shard
        geometry disagrees with the regimen walk is caught by the
        validation pass, demoted from a hit, and re-scanned."""
        root, cold = populated
        blob_path = _shard_blob(root)
        shards = pickle.loads(blob_path.read_bytes())
        shards[0] = dataclasses.replace(shards[0], gap=shards[0].gap + 1)
        blob = pickle.dumps(shards, protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(blob_path, blob)
        manifest_path = blob_path.with_suffix(".json")
        manifest = read_json(manifest_path)
        manifest["digest"] = blob_digest(blob)
        manifest["bytes"] = len(blob)
        atomic_write_json(manifest_path, manifest)
        self._assert_degrades(workload, cold, capsys)


# ---------------------------------------------------------------------------
# streaming fold ordering guarantees
# ---------------------------------------------------------------------------


class _ReverseOrderExecutor(Executor):
    """Adversarial backend: deliveries arrive in *reverse* task order."""

    name = "test-reverse-order"
    description = "test backend streaming completions in reverse"

    def map(self, worker, tasks, *, on_result=None):
        results = [worker(task) for task in tasks]
        if on_result is not None:
            for index in reversed(range(len(results))):
                on_result(index, results[index])
        return results


class _SilentExecutor(Executor):
    """Backend that never invokes the streaming hook (finish fallback)."""

    name = "test-silent"
    description = "test backend without a streaming hook"

    def map(self, worker, tasks, *, on_result=None):
        del on_result
        return [worker(task) for task in tasks]


class _StutteringExecutor(Executor):
    """Backend that delivers every completion twice (dedup contract)."""

    name = "test-stutter"
    description = "test backend delivering every result twice"

    def map(self, worker, tasks, *, on_result=None):
        results = [worker(task) for task in tasks]
        if on_result is not None:
            for index, result in enumerate(results):
                on_result(index, result)
                on_result(index, result)
        return results


class TestStreamingFold:
    @pytest.fixture(scope="class")
    def baseline(self, workload):
        return _simulator(workload, cluster_jobs=2).run(
            ReverseStateReconstruction(0.3))

    @pytest.fixture()
    def adversarial_backends(self, monkeypatch):
        backends = (_ReverseOrderExecutor, _SilentExecutor,
                    _StutteringExecutor)
        for cls in backends:
            register_executor(cls.name, cls, replace=True)
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        yield
        for cls in backends:
            unregister_executor(cls.name)

    def _run_with(self, workload, monkeypatch, name):
        monkeypatch.setenv("REPRO_EXECUTOR", name)
        return _simulator(workload, cluster_jobs=2).run(
            ReverseStateReconstruction(0.3))

    def test_reverse_completion_order_is_bit_identical(
            self, workload, baseline, adversarial_backends, monkeypatch):
        """The pending-heap holds out-of-order completions until their
        turn; last-cluster-first delivery folds identically."""
        run = self._run_with(workload, monkeypatch,
                             _ReverseOrderExecutor.name)
        assert run.cluster_ipcs == baseline.cluster_ipcs
        assert run.cost.as_dict() == baseline.cost.as_dict()

    def test_executor_without_hook_is_bit_identical(
            self, workload, baseline, adversarial_backends, monkeypatch):
        """Backends that ignore `on_result` are folded from the returned
        list by `finish` — same results, no double counting."""
        run = self._run_with(workload, monkeypatch, _SilentExecutor.name)
        assert run.cluster_ipcs == baseline.cluster_ipcs
        assert run.cost.as_dict() == baseline.cost.as_dict()

    def test_duplicate_deliveries_fold_once(
            self, workload, baseline, adversarial_backends, monkeypatch):
        """Each cluster folds exactly once even when the backend streams
        it twice and the return-value pass replays it a third time."""
        run = self._run_with(workload, monkeypatch,
                             _StutteringExecutor.name)
        assert run.cluster_ipcs == baseline.cluster_ipcs
        assert run.cost.as_dict() == baseline.cost.as_dict()

    @pytest.mark.parametrize("name", ["inprocess", "threads", "pool",
                                      "subprocess-queue"])
    def test_every_registered_backend_is_bit_identical(
            self, workload, baseline, monkeypatch, name):
        run = self._run_with(workload, monkeypatch, name)
        assert run.cluster_ipcs == baseline.cluster_ipcs
        assert run.cost.as_dict() == baseline.cost.as_dict()

    def test_parametrized_backends_cover_the_registry(self):
        """Fail loudly if a new backend lands without joining the
        equivalence matrix above."""
        assert set(registered_executor_names()) >= \
            {"inprocess", "threads", "pool", "subprocess-queue"}

    def test_streaming_equals_barrier_with_store(self, workload,
                                                 monkeypatch, tmp_path):
        """Cross product: adversarial delivery on a warm store hit still
        folds bit-identically to the plain cold run."""
        register_executor(_ReverseOrderExecutor.name, _ReverseOrderExecutor,
                          replace=True)
        try:
            monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "store"))
            cold = _run(workload)
            monkeypatch.setenv("REPRO_EXECUTOR", _ReverseOrderExecutor.name)
            warm = _run(workload)
            assert warm.extra["checkpoint_store"] == "hit"
            assert warm.cluster_ipcs == cold.cluster_ipcs
            assert warm.cost.as_dict() == cold.cost.as_dict()
        finally:
            unregister_executor(_ReverseOrderExecutor.name)


# ---------------------------------------------------------------------------
# options + CLI plumbing
# ---------------------------------------------------------------------------


class TestOptionsPlumbing:
    def test_from_env_reads_the_variable(self, monkeypatch, tmp_path):
        from repro.harness.options import RunOptions

        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path))
        options = RunOptions.from_env()
        assert options.checkpoint_store == str(tmp_path)
        assert options.store().root == tmp_path

    def test_environ_round_trip_and_apply(self, monkeypatch, tmp_path):
        from repro.harness.options import RunOptions

        monkeypatch.setenv(STORE_ENV_VAR, "stale-parent-value")
        options = RunOptions(checkpoint_store=str(tmp_path))
        assert options.environ()[STORE_ENV_VAR] == str(tmp_path)
        with options.apply():
            assert os.environ[STORE_ENV_VAR] == str(tmp_path)
        assert os.environ[STORE_ENV_VAR] == "stale-parent-value"

    def test_apply_removes_unset_store(self, monkeypatch):
        from repro.harness.options import RunOptions

        monkeypatch.setenv(STORE_ENV_VAR, "leaky")
        with RunOptions().apply():
            assert STORE_ENV_VAR not in os.environ
        assert os.environ[STORE_ENV_VAR] == "leaky"

    def test_store_off_resolves_to_none(self):
        from repro.harness.options import RunOptions

        assert RunOptions(checkpoint_store="off").store() is None


class TestCacheCLI:
    @pytest.fixture()
    def cli_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "results"))
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "checkpoints"))
        return tmp_path

    def test_cache_requires_an_action(self):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_stats_lists_both_layers(self, cli_env, capsys):
        from repro.__main__ import main

        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "results" in out and "checkpoints" in out
        assert str(cli_env / "checkpoints") in out

    def test_stats_with_cache_off_lists_store_only(self, cli_env, capsys):
        from repro.__main__ import main

        assert main(["cache", "stats", "--cache", "off"]) == 0
        out = capsys.readouterr().out
        assert "checkpoints" in out
        assert str(cli_env / "results") not in out

    def test_gc_negative_budget_exits_2(self, cli_env, capsys):
        from repro.__main__ import main

        assert main(["cache", "gc", "--max-bytes", "-5"]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_gc_all_layers_disabled_exits_2(self, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert main(["cache", "gc", "--max-bytes", "0",
                     "--layer", "checkpoints", "--cache", "off",
                     "--store", "off"]) == 2
        assert "disabled" in capsys.readouterr().err

    def test_gc_evicts_store_entries(self, cli_env, capsys):
        from repro.__main__ import main

        store = CheckpointStore(cli_env / "checkpoints")
        store.put("ab" + "0" * 62, list(range(100)))
        assert main(["cache", "gc", "--max-bytes", "0",
                     "--layer", "checkpoints"]) == 0
        out = capsys.readouterr().out
        assert "checkpoints: evicted 1 of 1" in out
        assert store.entry_count() == 0

    def test_sample_store_flag_populates_the_store(self, monkeypatch,
                                                   tmp_path, capsys):
        from repro.__main__ import main

        root = tmp_path / "flag-store"
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "ci")
        monkeypatch.setenv("REPRO_CLUSTER_JOBS", "2")
        assert main(["sample", "ammp", "--method", "rsr",
                     "--store", str(root)]) == 0
        assert len(list(root.glob("shards/*/*.pkl"))) == 1
        # The flag's reach is scoped to the run: the environment is
        # restored afterwards.
        assert STORE_ENV_VAR not in os.environ


# ---------------------------------------------------------------------------
# live-points envelope + store integration
# ---------------------------------------------------------------------------


class TestLivePointsStore:
    @pytest.fixture(scope="class")
    def library(self, workload):
        from repro.livepoints import LivePointLibrary

        return LivePointLibrary.generate(workload, REGIMEN,
                                         warmup_prefix=PREFIX)

    def test_envelope_round_trip(self, library, tmp_path):
        from repro.livepoints import LivePointLibrary

        path = tmp_path / "lib.lpz"
        library.save(path)
        envelope = pickle.loads(path.read_bytes())
        assert envelope["format"] == "repro-livepoints"
        assert envelope["version"] == LivePointLibrary.PAYLOAD_VERSION
        assert envelope["points"] == len(library)
        loaded = LivePointLibrary.load(path)
        assert len(loaded) == len(library)
        assert loaded.workload.name == library.workload.name

    def test_legacy_bare_pickle_warns_and_loads(self, library, tmp_path):
        from repro.livepoints import LivePointLibrary

        path = tmp_path / "legacy.lpz"
        path.write_bytes(pickle.dumps(library))
        with pytest.warns(DeprecationWarning, match="legacy bare-pickle"):
            loaded = LivePointLibrary.load(path)
        assert len(loaded) == len(library)

    def test_tampered_digest_raises(self, library, tmp_path):
        from repro.livepoints import LivePointLibrary

        path = tmp_path / "lib.lpz"
        library.save(path)
        envelope = pickle.loads(path.read_bytes())
        envelope["digest"] = "0" * 64
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(CorruptEntryError, match="digest mismatch"):
            LivePointLibrary.load(path)

    def test_wrong_point_count_raises(self, library, tmp_path):
        from repro.livepoints import LivePointLibrary

        path = tmp_path / "lib.lpz"
        library.save(path)
        envelope = pickle.loads(path.read_bytes())
        envelope["points"] = envelope["points"] + 1
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(CorruptEntryError, match="points"):
            LivePointLibrary.load(path)

    def test_non_library_file_raises_type_error(self, tmp_path):
        from repro.livepoints import LivePointLibrary

        path = tmp_path / "other.pkl"
        path.write_bytes(pickle.dumps({"format": "something-else"}))
        with pytest.raises(TypeError):
            LivePointLibrary.load(path)

    def test_store_round_trip(self, library, tmp_path):
        from repro.livepoints import LivePointLibrary

        store = CheckpointStore(tmp_path / "store")
        key = library.store_in(store, warmup_prefix=PREFIX)
        assert key == library.store_key(warmup_prefix=PREFIX)
        loaded = LivePointLibrary.from_store(store, key)
        assert loaded is not None
        assert len(loaded) == len(library)
        replay = loaded.replay()
        assert len(replay.cluster_ipcs) == REGIMEN.num_clusters

    def test_from_store_miss_and_wrong_kind(self, library, tmp_path):
        from repro.livepoints import LivePointLibrary

        store = CheckpointStore(tmp_path / "store")
        key = library.store_key(warmup_prefix=PREFIX)
        assert LivePointLibrary.from_store(store, key) is None
        store.put(key, {"not": "a library"}, kind="livepoints")
        assert LivePointLibrary.from_store(store, key) is None
