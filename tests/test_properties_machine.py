"""Property-based tests of functional-machine semantics."""

from hypothesis import given, settings, strategies as st

from repro.functional import FunctionalMachine, to_signed
from repro.isa import ProgramBuilder

MASK64 = (1 << 64) - 1

uint64 = st.integers(min_value=0, max_value=MASK64)


def run_binop(method_name, lhs, rhs):
    builder = ProgramBuilder()
    builder.li(1, lhs)
    builder.li(2, rhs)
    getattr(builder, method_name)(3, 1, 2)
    builder.halt()
    machine = FunctionalMachine(builder.build())
    machine.run(10)
    return machine.registers[3]


@given(uint64, uint64)
@settings(max_examples=100, deadline=None)
def test_add_matches_modular_arithmetic(a, b):
    assert run_binop("add", a, b) == (a + b) & MASK64


@given(uint64, uint64)
@settings(max_examples=100, deadline=None)
def test_sub_matches_modular_arithmetic(a, b):
    assert run_binop("sub", a, b) == (a - b) & MASK64


@given(uint64, uint64)
@settings(max_examples=50, deadline=None)
def test_mul_matches_modular_arithmetic(a, b):
    assert run_binop("mul", a, b) == (a * b) & MASK64


@given(uint64, uint64)
@settings(max_examples=100, deadline=None)
def test_bitwise_ops_match(a, b):
    assert run_binop("and_", a, b) == a & b
    assert run_binop("or_", a, b) == a | b
    assert run_binop("xor", a, b) == a ^ b


@given(uint64, st.integers(min_value=0, max_value=200))
@settings(max_examples=100, deadline=None)
def test_shifts_mask_amount(value, amount):
    assert run_binop("sll", value, amount) == \
        (value << (amount & 63)) & MASK64
    assert run_binop("srl", value, amount) == value >> (amount & 63)


@given(uint64, uint64)
@settings(max_examples=100, deadline=None)
def test_slt_is_signed_comparison(a, b):
    assert run_binop("slt", a, b) == int(to_signed(a) < to_signed(b))


@given(uint64, uint64)
@settings(max_examples=50, deadline=None)
def test_branch_consistency_with_slt(a, b):
    """BLT must agree with SLT for all operand pairs."""
    builder = ProgramBuilder()
    builder.li(1, a)
    builder.li(2, b)
    builder.blt(1, 2, "less")
    builder.li(3, 0)
    builder.halt()
    builder.label("less")
    builder.li(3, 1)
    builder.halt()
    machine = FunctionalMachine(builder.build())
    machine.run(10)
    assert machine.registers[3] == int(to_signed(a) < to_signed(b))


@given(st.integers(min_value=1, max_value=500),
       st.integers(min_value=1, max_value=500))
@settings(max_examples=30, deadline=None)
def test_run_split_equals_run_whole(first, second):
    """Running n then m instructions equals running n+m at once."""
    def build():
        builder = ProgramBuilder()
        builder.li(6, 99991)
        builder.label("top")
        builder.li(8, 2862933555777941757)
        builder.mul(6, 6, 8)
        builder.addi(6, 6, 3037000493)
        builder.srli(7, 6, 40)
        builder.beq(7, 0, "top")
        builder.addi(9, 9, 1)
        builder.jmp("top")
        return FunctionalMachine(builder.build())

    split = build()
    split.run(first)
    split.run(second)
    whole = build()
    whole.run(first + second)
    assert split.pc == whole.pc
    assert split.registers == whole.registers
    assert split.instructions_retired == whole.instructions_retired


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=30, deadline=None)
def test_checkpoint_restore_replays_identically(prefix):
    from repro.workloads import build_workload
    machine = build_workload("twolf").make_machine()
    machine.run(prefix)
    checkpoint = machine.checkpoint()
    machine.run(200)
    after_first = (machine.pc, tuple(machine.registers))
    machine.restore(checkpoint)
    machine.run(200)
    assert (machine.pc, tuple(machine.registers)) == after_first
