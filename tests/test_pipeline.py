"""Tests for the two-phase execution pipeline (sampling.pipeline).

Covers the dispatcher (cluster-jobs resolution, non-shardable
fallback), the serial/sharded equivalence contract (identical cost
ledger, bounded IPC bias, worker-count invariance, raw == compacted),
the fold's corruption cross-check, telemetry/audit flow through shard
workers, and the harness-side plumbing (map_tasks, shard cache keys).
"""

import dataclasses

import pytest

from repro.core import ReverseStateReconstruction
from repro.harness import ExperimentScale
from repro.harness.parallel import CellSpec, map_tasks
from repro.sampling import (
    CLUSTER_JOBS_ENV_VAR,
    SampledSimulator,
    SamplingRegimen,
    SimulatorConfigs,
    cluster_geometry,
    resolve_cluster_jobs,
)
from repro.telemetry import Telemetry
from repro.warmup import SmartsWarmup
from repro.workloads import build_workload

REGIMEN = SamplingRegimen(total_instructions=24_000, num_clusters=4,
                          cluster_size=600, seed=7)
PREFIX = 2_000
RAMP = 64


@pytest.fixture(scope="module")
def workload():
    return build_workload("ammp")


def _simulator(workload, **kwargs):
    kwargs.setdefault("warmup_prefix", PREFIX)
    kwargs.setdefault("detail_ramp", RAMP)
    return SampledSimulator(workload, REGIMEN, **kwargs)


@pytest.fixture(scope="module")
def serial_run(workload):
    return _simulator(workload).run(ReverseStateReconstruction(0.3))


@pytest.fixture(scope="module")
def sharded_run(workload):
    return _simulator(workload, cluster_jobs=2).run(
        ReverseStateReconstruction(0.3))


class TestResolveClusterJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(CLUSTER_JOBS_ENV_VAR, raising=False)
        assert resolve_cluster_jobs() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(CLUSTER_JOBS_ENV_VAR, "7")
        assert resolve_cluster_jobs(3) == 3

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(CLUSTER_JOBS_ENV_VAR, "4")
        assert resolve_cluster_jobs() == 4

    def test_empty_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(CLUSTER_JOBS_ENV_VAR, "  ")
        assert resolve_cluster_jobs() == 1

    def test_zero_means_cpu_count(self):
        assert resolve_cluster_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            resolve_cluster_jobs(-1)

    def test_garbage_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(CLUSTER_JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError, match=CLUSTER_JOBS_ENV_VAR):
            resolve_cluster_jobs()


class TestClusterGeometry:
    def test_ramp_borrows_from_gap(self):
        assert cluster_geometry(0, 1_000, 256) == (256, 744)

    def test_ramp_clamped_to_available_gap(self):
        assert cluster_geometry(900, 1_000, 256) == (100, 0)

    def test_zero_ramp(self):
        assert cluster_geometry(400, 1_000, 0) == (0, 600)

    def test_position_at_start(self):
        assert cluster_geometry(1_000, 1_000, 256) == (0, 0)


class TestShardedEquivalence:
    def test_cluster_count_and_flags(self, sharded_run):
        assert len(sharded_run.cluster_ipcs) == REGIMEN.num_clusters
        assert sharded_run.extra["sharded"] is True
        assert sharded_run.extra["cluster_jobs"] == 2

    def test_serial_run_carries_no_shard_flags(self, serial_run):
        assert "sharded" not in serial_run.extra
        assert "cluster_jobs" not in serial_run.extra

    def test_cost_ledger_identical(self, serial_run, sharded_run):
        """Cold-scan positions and gap logs are bit-identical to the
        serial walk, so every cost component matches exactly."""
        assert sharded_run.cost.as_dict() == serial_run.cost.as_dict()

    def test_ipc_bias_is_bounded(self, serial_run, sharded_run):
        """Shards lack the serial walk's stale microarchitectural
        carry-over, so per-cluster IPCs carry a residual bias.  At this
        deliberately tiny scale (600-instruction clusters, cold 2k
        prefix) the relative residual is large; the quantitative bound
        at benchmark scale is gated by BENCH_pr5 / TRAJECTORY.json, so
        this test only pins the order of magnitude."""
        for serial_ipc, shard_ipc in zip(serial_run.cluster_ipcs,
                                         sharded_run.cluster_ipcs):
            assert shard_ipc > 0
            assert shard_ipc == pytest.approx(serial_ipc, rel=0.75)
        assert sharded_run.estimate.mean == pytest.approx(
            serial_run.estimate.mean, rel=0.5)

    def test_sharded_run_is_deterministic(self, workload, sharded_run):
        again = _simulator(workload, cluster_jobs=2).run(
            ReverseStateReconstruction(0.3))
        assert again.cluster_ipcs == sharded_run.cluster_ipcs
        assert again.cost.as_dict() == sharded_run.cost.as_dict()

    def test_worker_count_invariance(self, workload, sharded_run):
        """jobs=3 executes the identical two-phase schedule as jobs=2 —
        the property that lets the cache key ignore the worker count."""
        three = _simulator(workload, cluster_jobs=3).run(
            ReverseStateReconstruction(0.3))
        assert three.cluster_ipcs == sharded_run.cluster_ipcs
        assert three.cost.as_dict() == sharded_run.cost.as_dict()

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_raw_and_compacted_sources_identical(self, workload, jobs):
        """Acceptance: both source representations produce bit-identical
        results through the serial path and through shards."""
        raw = _simulator(workload, cluster_jobs=jobs).run(
            ReverseStateReconstruction(0.3, source="raw"))
        compacted = _simulator(workload, cluster_jobs=jobs).run(
            ReverseStateReconstruction(0.3, source="compacted"))
        assert raw.cluster_ipcs == compacted.cluster_ipcs
        assert raw.cost.as_dict() == compacted.cost.as_dict()

    def test_non_shardable_method_falls_back_serial(self, workload,
                                                    capsys):
        method = SmartsWarmup()
        assert method.shardable is False
        sharded_ask = _simulator(workload, cluster_jobs=2).run(method)
        err = capsys.readouterr().err
        assert "cannot be sharded" in err
        assert "S$BP" in err
        serial = _simulator(workload).run(SmartsWarmup())
        assert sharded_ask.cluster_ipcs == serial.cluster_ipcs
        assert "sharded" not in sharded_ask.extra

    def test_fold_rejects_corrupt_instruction_counts(self, workload,
                                                     monkeypatch):
        """The fold cross-checks each shard against the cold scan."""
        from repro.sampling.pipeline import run_shard

        def tampering_map(worker, tasks, jobs, **kwargs):
            results = [run_shard(task) for task in tasks]
            results[0] = dataclasses.replace(
                results[0], instructions=results[0].instructions + 1)
            return results

        monkeypatch.setattr("repro.harness.parallel.map_tasks",
                            tampering_map)
        with pytest.raises(RuntimeError, match="corrupt"):
            _simulator(workload, cluster_jobs=2).run(
                ReverseStateReconstruction(0.3))


class TestShardedTelemetry:
    @pytest.fixture()
    def traced_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        monkeypatch.delenv(CLUSTER_JOBS_ENV_VAR, raising=False)
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))

    def test_every_cluster_appears_exactly_once(self, workload,
                                                traced_env):
        run = _simulator(workload, cluster_jobs=2).run(
            ReverseStateReconstruction(0.3))
        snapshot = run.extra["telemetry"]
        clusters = [record["cluster"] for record in snapshot.trace_records
                    if "ipc" in record]
        assert sorted(clusters) == list(range(REGIMEN.num_clusters))
        assert snapshot.gauges["run.cluster_jobs"] == 2
        assert snapshot.gauges["run.clusters"] == REGIMEN.num_clusters

    def test_record_fields_match_serial(self, workload, traced_env):
        """Deterministic per-cluster record fields (geometry, cold-scan
        cost shares) are identical between the two strategies."""
        fields = ("start", "gap", "ramp", "instructions",
                  "functional_instructions", "log_records")
        serial = _simulator(workload, telemetry=Telemetry).run(
            ReverseStateReconstruction(0.3))
        sharded = _simulator(workload, cluster_jobs=2).run(
            ReverseStateReconstruction(0.3))

        def rows(run):
            records = [r for r in run.extra["telemetry"].trace_records
                       if "ipc" in r]
            records.sort(key=lambda r: r["cluster"])
            return [tuple(r[name] for name in fields) for r in records]

        assert rows(sharded) == rows(serial)

    def test_phase_timers_cover_both_phases(self, workload, traced_env):
        run = _simulator(workload, cluster_jobs=2).run(
            ReverseStateReconstruction(0.3))
        phases = run.extra["telemetry"].phase_seconds
        for name in ("prefix", "cold_skip", "reconstruct", "hot_sim"):
            assert phases.get(name, 0.0) > 0.0

    def test_audit_probes_ride_into_shards(self, workload, traced_env,
                                           monkeypatch):
        from repro.harness.reporting import audit_rows

        monkeypatch.setenv("REPRO_AUDIT", "1")
        run = _simulator(workload, cluster_jobs=2).run(
            ReverseStateReconstruction(0.3))
        rows = audit_rows(run.extra["telemetry"])
        assert [row["cluster"] for row in rows] == \
            list(range(REGIMEN.num_clusters))
        for row, ipc in zip(rows, run.cluster_ipcs):
            assert row["cold_start_error"] == pytest.approx(
                ipc - row["ref_ipc"])


def _double(value):
    return value * 2


def _call(task):
    return task()


class TestMapTasks:
    def test_parallel_preserves_order(self):
        values = list(range(24))
        assert map_tasks(_double, values, jobs=3) == \
            [value * 2 for value in values]

    def test_serial_when_one_job(self):
        assert map_tasks(_double, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_unpicklable_tasks_fall_back_in_process(self):
        tasks = [(lambda: 5), (lambda: 9)]
        assert map_tasks(_call, tasks, jobs=4) == [5, 9]

    def test_single_task_runs_in_process(self):
        assert map_tasks(_double, [21], jobs=8) == [42]


class TestShardCacheKeys:
    def _spec(self, cluster_jobs):
        scale = ExperimentScale("tiny-key", total_instructions=24_000,
                                num_clusters=4, cluster_size=600,
                                warmup_prefix=2_000)
        return CellSpec("ammp", "rsr", scale, SimulatorConfigs(),
                        cluster_jobs=cluster_jobs)

    def test_sharded_key_differs_from_serial(self):
        assert self._spec(2).key() != self._spec(1).key()

    def test_key_ignores_worker_count(self):
        assert self._spec(2).key() == self._spec(4).key()
