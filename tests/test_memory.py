"""Unit tests for the sparse Memory model."""

from repro.functional import Memory, WORD_BYTES


class TestBasics:
    def test_unwritten_reads_zero(self):
        assert Memory().load(0x1000) == 0

    def test_store_load_roundtrip(self):
        memory = Memory()
        memory.store(0x1000, 42)
        assert memory.load(0x1000) == 42

    def test_word_aligned_aliasing(self):
        memory = Memory()
        memory.store(0x1000, 7)
        # Any byte inside the same 8-byte word reads the same value.
        for offset in range(WORD_BYTES):
            assert memory.load(0x1000 + offset) == 7

    def test_adjacent_words_independent(self):
        memory = Memory()
        memory.store(0x1000, 1)
        memory.store(0x1008, 2)
        assert memory.load(0x1000) == 1
        assert memory.load(0x1008) == 2

    def test_overwrite(self):
        memory = Memory()
        memory.store(0x20, 1)
        memory.store(0x20, 2)
        assert memory.load(0x20) == 2

    def test_fill_words(self):
        memory = Memory()
        memory.fill_words(0x100, [10, 20, 30])
        assert memory.load(0x100) == 10
        assert memory.load(0x108) == 20
        assert memory.load(0x110) == 30

    def test_fill_accepts_generator(self):
        memory = Memory()
        memory.fill_words(0, (i * i for i in range(4)))
        assert memory.load(0x18) == 9

    def test_footprint(self):
        memory = Memory()
        assert memory.footprint_words() == 0
        memory.store(0, 1)
        memory.store(8, 1)
        memory.store(3, 5)  # same word as address 0
        assert memory.footprint_words() == 2

    def test_copy_is_independent(self):
        memory = Memory()
        memory.store(0, 1)
        clone = memory.copy()
        clone.store(0, 99)
        assert memory.load(0) == 1
        assert clone.load(0) == 99

    def test_clear(self):
        memory = Memory()
        memory.store(0, 1)
        memory.clear()
        assert memory.load(0) == 0
        assert memory.footprint_words() == 0
