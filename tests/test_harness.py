"""Unit tests for the experiment harness and reporting."""

import pytest

from repro.harness import (
    ExperimentScale,
    SCALES,
    scale_from_env,
    run_workload_experiment,
    run_matrix,
    average_over_workloads,
    format_table,
    format_table1,
    format_method_summary,
    format_per_workload,
    format_speedups,
)
from repro.warmup import NoWarmup, SmartsWarmup
from repro.core import ReverseStateReconstruction


TINY = ExperimentScale("tiny", total_instructions=24_000, num_clusters=4,
                       cluster_size=600)


def tiny_methods():
    return [NoWarmup(), SmartsWarmup(), ReverseStateReconstruction(0.2)]


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(tiny_methods, workload_names=("ammp", "mcf"),
                      scale=TINY)


class TestScales:
    def test_presets_exist(self):
        assert {"ci", "bench", "default", "full"} <= set(SCALES)

    def test_scale_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPERIMENT_SCALE", raising=False)
        assert scale_from_env("ci").name == "ci"

    def test_scale_from_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "full")
        assert scale_from_env("ci").name == "full"

    def test_scale_from_env_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "galactic")
        with pytest.raises(ValueError):
            scale_from_env()

    def test_regimen_derivation(self):
        regimen = TINY.regimen()
        assert regimen.total_instructions == 24_000
        assert regimen.num_clusters == 4


class TestMatrix:
    def test_structure(self, matrix):
        assert set(matrix) == {"ammp", "mcf"}
        for experiment in matrix.values():
            assert set(experiment.outcomes) == \
                {"None", "S$BP", "R$BP (20%)"}

    def test_true_ipc_positive(self, matrix):
        for experiment in matrix.values():
            assert experiment.true_ipc > 0

    def test_outcome_metrics(self, matrix):
        outcome = matrix["ammp"].outcomes["S$BP"]
        assert outcome.relative_error >= 0
        assert outcome.work_units > 0
        assert outcome.wall_seconds > 0
        assert isinstance(outcome.passes_confidence, bool)

    def test_speedup_of_baseline_is_one(self, matrix):
        assert matrix["ammp"].speedup("S$BP") == pytest.approx(1.0)

    def test_rsr_speedup_above_one(self, matrix):
        assert matrix["ammp"].speedup("R$BP (20%)") > 1.0

    def test_average_over_workloads(self, matrix):
        error, work, wall = average_over_workloads(matrix, "None")
        assert error >= 0 and work > 0 and wall > 0

    def test_true_runs_cached(self):
        from repro.harness import true_run_for
        a = true_run_for("ammp", TINY)
        b = true_run_for("ammp", TINY)
        assert a is b


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("bbbb") == lines[2].index("2")

    def test_table1(self, matrix):
        text = format_table1(matrix)
        assert "true IPC" in text
        assert "ammp" in text and "mcf" in text

    def test_method_summary(self, matrix):
        text = format_method_summary(matrix, ["None", "S$BP"], "Figure 7")
        assert "Figure 7" in text
        assert "%" in text

    def test_per_workload_grid(self, matrix):
        for value in ("error", "work", "wall", "ci", "ipc"):
            text = format_per_workload(matrix, ["None"], value=value)
            assert "None" in text
        with pytest.raises(ValueError):
            format_per_workload(matrix, ["None"], value="bogus")

    def test_speedups_table(self, matrix):
        text = format_speedups(matrix, "R$BP (20%)")
        assert "AVG" in text
        assert "x" in text


class TestWorkloadExperimentDirect:
    def test_single_workload(self):
        experiment = run_workload_experiment("art", tiny_methods(), TINY)
        assert experiment.workload_name == "art"
        assert len(experiment.outcomes) == 3


class TestEmptyGridGuards:
    """An empty matrix must render/average gracefully, not divide by zero."""

    def test_average_over_empty_matrix(self):
        assert average_over_workloads({}, "S$BP") == (0.0, 0.0, 0.0)

    def test_speedups_over_empty_matrix(self):
        text = format_speedups({}, "R$BP (20%)")
        assert "AVG" in text
        assert "-" in text
