"""Metrics exposition tests: histograms, render/parse round trips.

Covers the stdlib Prometheus-exposition layer end to end: the
fixed-bucket :class:`BucketHistogram` arithmetic, the
:class:`MetricsExposition` builder's render output, the strict
:func:`parse_exposition` validator (the same one the CI metrics-smoke
job runs against a live ``/metrics`` scrape), the offline
:func:`exposition_from_records` twin, and the correlation-id helpers
in :mod:`repro.telemetry.runid`.
"""

import math
import os

import pytest

from repro.telemetry import (
    BucketHistogram,
    DEFAULT_LATENCY_BUCKETS,
    MetricsExposition,
    RUN_ID_ENV_VAR,
    bound_run_id,
    exposition_from_records,
    mint_run_id,
    parse_exposition,
    run_id_from_env,
    validate_run_id,
)


class TestBucketHistogram:
    def test_observe_and_cumulative(self):
        hist = BucketHistogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(56.05)
        assert hist.cumulative() == [
            (0.1, 1), (1.0, 3), (10.0, 4), (math.inf, 5)]

    def test_boundary_value_is_le_inclusive(self):
        hist = BucketHistogram(buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.cumulative()[0] == (1.0, 1)

    def test_merge_requires_matching_buckets(self):
        a = BucketHistogram(buckets=(1.0, 2.0))
        b = BucketHistogram(buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.count == 3
        assert a.cumulative() == [(1.0, 1), (2.0, 2), (math.inf, 3)]
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(BucketHistogram(buckets=(5.0,)))

    def test_copy_is_independent(self):
        hist = BucketHistogram(buckets=(1.0,))
        hist.observe(0.5)
        snap = hist.copy()
        hist.observe(0.25)
        assert snap.count == 1
        assert hist.count == 2

    @pytest.mark.parametrize("bad", [
        (), (2.0, 1.0), (1.0, 1.0), (1.0, math.inf),
    ])
    def test_bad_bucket_specs_raise(self, bad):
        with pytest.raises(ValueError):
            BucketHistogram(buckets=bad)

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == \
            sorted(set(DEFAULT_LATENCY_BUCKETS))


class TestMetricsExposition:
    def test_counter_accumulates_and_gauge_overwrites(self):
        expo = MetricsExposition()
        expo.counter("repro_jobs_total", "Jobs.", 1, {"kind": "sample"})
        expo.counter("repro_jobs_total", "Jobs.", 2, {"kind": "sample"})
        expo.gauge("repro_depth", "Depth.", 3)
        expo.gauge("repro_depth", "Depth.", 7)
        text = expo.render()
        assert 'repro_jobs_total{kind="sample"} 3' in text
        assert "repro_depth 7" in text

    def test_counter_name_must_end_total(self):
        with pytest.raises(ValueError, match="_total"):
            MetricsExposition().counter("repro_jobs", "Jobs.", 1)

    def test_kind_conflict_raises(self):
        expo = MetricsExposition()
        expo.gauge("repro_thing", "X.", 1)
        with pytest.raises(ValueError, match="already registered"):
            expo.observe("repro_thing", "X.", 1)

    def test_invalid_names_and_labels_raise(self):
        expo = MetricsExposition()
        with pytest.raises(ValueError, match="invalid metric name"):
            expo.gauge("bad name", "X.", 1)
        with pytest.raises(ValueError, match="invalid label name"):
            expo.gauge("repro_ok", "X.", 1, {"bad-label": "v"})

    def test_label_values_are_escaped(self):
        expo = MetricsExposition()
        expo.gauge("repro_info", "X.", 1,
                   {"path": 'a"b\\c\nd'})
        text = expo.render()
        assert r'path="a\"b\\c\nd"' in text
        parsed = parse_exposition(text)
        _, labels, _ = parsed["repro_info"]["samples"][0]
        assert labels["path"] == 'a"b\\c\nd'

    def test_render_parse_round_trip(self):
        expo = MetricsExposition()
        expo.counter("repro_requests_total", "Requests.", 5,
                     {"route": "/jobs"})
        expo.gauge("repro_uptime_seconds", "Uptime.", 12.5)
        for value in (0.02, 0.3, 4.0):
            expo.observe("repro_latency_seconds", "Latency.", value,
                         buckets=(0.1, 1.0))
        families = parse_exposition(expo.render())
        assert families["repro_requests_total"]["kind"] == "counter"
        assert families["repro_uptime_seconds"]["samples"] == [
            ("repro_uptime_seconds", {}, 12.5)]
        hist = families["repro_latency_seconds"]
        assert hist["kind"] == "histogram"
        by_name = {}
        for sample_name, labels, value in hist["samples"]:
            by_name.setdefault(sample_name, []).append((labels, value))
        assert by_name["repro_latency_seconds_count"][0][1] == 3
        inf_bucket = [v for labels, v
                      in by_name["repro_latency_seconds_bucket"]
                      if labels["le"] == "+Inf"]
        assert inf_bucket == [3]

    def test_attach_histogram_merges_on_second_attach(self):
        expo = MetricsExposition()
        a = BucketHistogram(buckets=(1.0,))
        a.observe(0.5)
        b = BucketHistogram(buckets=(1.0,))
        b.observe(2.0)
        expo.attach_histogram("repro_wait_seconds", "Wait.", a,
                              {"kind": "sample"})
        expo.attach_histogram("repro_wait_seconds", "Wait.", b,
                              {"kind": "sample"})
        families = parse_exposition(expo.render())
        counts = [v for name, _, v
                  in families["repro_wait_seconds"]["samples"]
                  if name.endswith("_count")]
        assert counts == [2]

    def test_empty_exposition_renders_empty(self):
        assert MetricsExposition().render() == ""


class TestParseExposition:
    def test_sample_without_type_raises(self):
        with pytest.raises(ValueError, match="no\\s+# TYPE"):
            parse_exposition("repro_orphan 1\n")

    def test_malformed_type_raises(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_exposition("# TYPE repro_x summary\nrepro_x 1\n")

    def test_histogram_missing_inf_bucket_raises(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 1\n'
            "repro_h_sum 0.5\n"
            "repro_h_count 1\n"
        )
        with pytest.raises(ValueError, match="missing \\+Inf"):
            parse_exposition(text)

    def test_histogram_non_cumulative_raises(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 5\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 0.5\n"
            "repro_h_count 2\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_exposition(text)

    def test_histogram_count_mismatch_raises(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 0.5\n"
            "repro_h_count 3\n"
        )
        with pytest.raises(ValueError, match="!= \\+Inf"):
            parse_exposition(text)

    def test_plain_comments_and_blank_lines_ignored(self):
        families = parse_exposition(
            "\n# a comment\n# TYPE repro_g gauge\nrepro_g 1\n")
        assert families["repro_g"]["samples"] == [("repro_g", {}, 1.0)]


class TestExpositionFromRecords:
    RECORDS = [
        {"type": "cluster", "workload": "gcc", "method": "rsr",
         "run_id": "rdeadbeef", "wall_seconds": 0.25,
         "warm_seconds": 0.1, "detail_seconds": 0.15,
         "counters": {"cache.hits": 3},
         "blocks_reconstructed": 40},
        {"type": "cluster", "workload": "gcc", "method": "rsr",
         "run_id": "rdeadbeef", "wall_seconds": 0.5},
        {"type": "meta", "run_id": "rcafef00d"},
    ]

    def test_builds_valid_exposition(self):
        text = exposition_from_records(self.RECORDS).render()
        families = parse_exposition(text)
        clusters = families["repro_clusters_total"]["samples"]
        assert clusters == [
            ("repro_clusters_total",
             {"method": "rsr", "workload": "gcc"}, 2.0)]
        assert "repro_cluster_phase_seconds" in families
        assert "repro_cluster_wall_seconds" in families
        assert families["repro_cache_hits_total"]["samples"][0][2] == 3.0
        assert families["repro_blocks_reconstructed_total"][
            "samples"][0][2] == 40.0

    def test_run_info_series_per_run_id(self):
        families = parse_exposition(
            exposition_from_records(self.RECORDS).render())
        run_ids = sorted(labels["run_id"] for _, labels, _
                         in families["repro_run_info"]["samples"])
        assert run_ids == ["rcafef00d", "rdeadbeef"]

    def test_no_records_renders_empty(self):
        assert exposition_from_records([]).render() == ""


class TestRunId:
    def test_mint_is_unique_and_valid(self):
        ids = {mint_run_id() for _ in range(100)}
        assert len(ids) == 100
        for run_id in ids:
            assert validate_run_id(run_id) == run_id
            assert run_id.startswith("r")

    @pytest.mark.parametrize("bad", ["", "has space", " pad ", "x" * 129,
                                     "new\nline"])
    def test_validate_rejects_bad_ids(self, bad):
        with pytest.raises(ValueError, match=RUN_ID_ENV_VAR):
            validate_run_id(bad)

    def test_bound_run_id_plants_and_restores(self, monkeypatch):
        monkeypatch.delenv(RUN_ID_ENV_VAR, raising=False)
        assert run_id_from_env() is None
        with bound_run_id("router"):
            assert run_id_from_env() == "router"
            with bound_run_id("rinner"):
                assert os.environ[RUN_ID_ENV_VAR] == "rinner"
            assert run_id_from_env() == "router"
        assert RUN_ID_ENV_VAR not in os.environ

    def test_bound_none_is_a_no_op(self, monkeypatch):
        monkeypatch.setenv(RUN_ID_ENV_VAR, "rkept")
        with bound_run_id(None):
            assert run_id_from_env() == "rkept"
        assert run_id_from_env() == "rkept"
