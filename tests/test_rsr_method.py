"""End-to-end tests of the Reverse State Reconstruction warm-up method."""

import pytest

from repro.branch import BranchPredictor, PredictorConfig
from repro.cache import MemoryHierarchy, paper_hierarchy_config
from repro.core import ReverseStateReconstruction
from repro.warmup import SimulationContext, SmartsWarmup
from repro.workloads import build_workload


def make_context(workload_name="twolf"):
    workload = build_workload(workload_name)
    return SimulationContext(
        machine=workload.make_machine(),
        hierarchy=MemoryHierarchy(paper_hierarchy_config(scale=16)),
        predictor=BranchPredictor(PredictorConfig(1024, 256, 8)),
    )


class TestConstruction:
    def test_names(self):
        assert ReverseStateReconstruction(0.2).name == "R$BP (20%)"
        assert ReverseStateReconstruction(1.0).name == "R$BP (100%)"
        assert ReverseStateReconstruction(
            0.4, warm_predictor=False).name == "R$ (40%)"
        assert ReverseStateReconstruction(
            warm_cache=False).name == "RBP"

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            ReverseStateReconstruction(0.0)
        with pytest.raises(ValueError):
            ReverseStateReconstruction(1.2)
        with pytest.raises(ValueError):
            ReverseStateReconstruction(0.5, warm_cache=False,
                                       warm_predictor=False)


class TestSkipAndLogging:
    def test_skip_logs_without_touching_state(self):
        context = make_context()
        method = ReverseStateReconstruction(0.2)
        method.bind(context)
        method.skip(4000)
        # Paper: "During logging, the state of the cache is left stale" —
        # no cache or predictor updates until pre_cluster.
        assert context.hierarchy.total_updates() == 0
        assert context.predictor.total_updates() == 0
        assert method.cost.log_records > 0
        assert method.log.record_count() == method.cost.log_records

    def test_cache_only_logs_no_branches(self):
        context = make_context()
        method = ReverseStateReconstruction(0.2, warm_predictor=False)
        method.bind(context)
        method.skip(2000)
        assert method.log.branch_record_count() == 0
        assert method.log.memory_record_count() > 0

    def test_bp_only_logs_no_memory(self):
        context = make_context()
        method = ReverseStateReconstruction(warm_cache=False)
        method.bind(context)
        method.skip(2000)
        assert method.log.memory_record_count() == 0
        assert method.log.branch_record_count() > 0


class TestPreAndPostCluster:
    def test_pre_cluster_reconstructs_caches(self):
        context = make_context()
        method = ReverseStateReconstruction(1.0)
        method.bind(context)
        method.skip(4000)
        method.pre_cluster()
        assert method.cost.cache_updates > 0
        assert context.hierarchy.l1d.contents()  # state repaired

    def test_pre_cluster_returns_hook_for_bp(self):
        context = make_context()
        method = ReverseStateReconstruction(1.0)
        method.bind(context)
        method.skip(2000)
        hook = method.pre_cluster()
        assert callable(hook)

    def test_cache_only_has_no_hook(self):
        context = make_context()
        method = ReverseStateReconstruction(1.0, warm_predictor=False)
        method.bind(context)
        method.skip(2000)
        assert method.pre_cluster() is None

    def test_eager_mode_drains_before_cluster(self):
        context = make_context()
        method = ReverseStateReconstruction(1.0, on_demand=False)
        method.bind(context)
        method.skip(2000)
        hook = method.pre_cluster()
        assert hook is None
        assert method._branch_reconstructor._cursor < 0  # fully drained

    def test_post_cluster_discards_log(self):
        # Paper: "data are kept only for the current cluster of execution".
        context = make_context()
        method = ReverseStateReconstruction(0.2)
        method.bind(context)
        method.skip(2000)
        method.pre_cluster()
        method.post_cluster()
        assert method.log.record_count() == 0

    def test_cache_stats_history_recorded(self):
        context = make_context()
        method = ReverseStateReconstruction(1.0)
        method.bind(context)
        for _ in range(3):
            method.skip(1000)
            method.pre_cluster()
            method.post_cluster()
        assert len(method.cache_stats_history) == 3
        assert all(s.scanned >= s.applied for s in method.cache_stats_history)


class TestAccuracyAgainstSmarts:
    def test_full_fraction_l1d_matches_smarts_loads(self):
        """With a 100% log the reconstructed L1/L2 must closely match the
        SMARTS-warmed caches (exact for allocate-on-reference streams; the
        deliberate WTNA write-allocation makes reconstruction a superset)."""
        rsr_context = make_context("vpr")
        rsr = ReverseStateReconstruction(1.0)
        rsr.bind(rsr_context)
        rsr.skip(8000)
        rsr.pre_cluster()

        smarts_context = make_context("vpr")
        smarts = SmartsWarmup()
        smarts.bind(smarts_context)
        smarts.skip(8000)

        rsr_lines = rsr_context.hierarchy.l1d.contents()
        smarts_lines = smarts_context.hierarchy.l1d.contents()
        union = rsr_lines | smarts_lines
        overlap = len(rsr_lines & smarts_lines) / len(union)
        assert overlap > 0.85

    def test_reconstruction_update_count_far_below_smarts(self):
        rsr_context = make_context("vpr")
        rsr = ReverseStateReconstruction(0.2)
        rsr.bind(rsr_context)
        rsr.skip(8000)
        rsr.pre_cluster()

        smarts_context = make_context("vpr")
        smarts = SmartsWarmup()
        smarts.bind(smarts_context)
        smarts.skip(8000)

        assert rsr.cost.cache_updates < smarts.cost.cache_updates / 3

    def test_ghr_matches_smarts(self):
        rsr_context = make_context("gcc")
        rsr = ReverseStateReconstruction(1.0)
        rsr.bind(rsr_context)
        rsr.skip(5000)
        rsr.pre_cluster()

        smarts_context = make_context("gcc")
        smarts = SmartsWarmup()
        smarts.bind(smarts_context)
        smarts.skip(5000)

        assert rsr_context.predictor.pht.history == \
            smarts_context.predictor.pht.history

    def test_load_only_stream_reconstructs_l1d_exactly(self):
        """For a pure-load workload, the full-log reverse reconstruction
        must reproduce the SMARTS-warmed L1D bit-exactly (the property
        test's guarantee, demonstrated end-to-end through the method)."""
        from repro.functional import Memory
        from repro.isa import ProgramBuilder
        from repro.workloads import Workload
        import numpy as np
        from repro.workloads import init_pointer_chain

        builder = ProgramBuilder()
        builder.jmp("main")
        builder.label("chase")
        builder.load(1, 1, 0)
        builder.addi(2, 2, -1)
        builder.bne(2, 0, "chase")
        builder.ret()
        builder.label("main")
        memory = Memory()
        head = init_pointer_chain(memory, 0x1000_0000, 4096,
                                  np.random.default_rng(3))
        builder.li(1, head)
        builder.label("loop")
        builder.li(2, 256)
        builder.call("chase")
        builder.jmp("loop")
        builder.entry("main")
        workload = Workload("loads-only", builder.build(), memory)

        def run(method):
            ctx = SimulationContext(
                machine=workload.make_machine(),
                hierarchy=MemoryHierarchy(paper_hierarchy_config(scale=32)),
                predictor=BranchPredictor(PredictorConfig(1024, 256, 8)),
            )
            method.bind(ctx)
            method.skip(20_000)
            method.pre_cluster()
            return ctx.hierarchy

        rsr_hierarchy = run(ReverseStateReconstruction(1.0))
        smarts_hierarchy = run(SmartsWarmup())
        assert rsr_hierarchy.l1d.state_fingerprint() == \
            smarts_hierarchy.l1d.state_fingerprint()

    def test_work_units_ordering(self):
        """None < RSR < SMARTS in total warm-up work."""
        from repro.warmup import NoWarmup
        results = {}
        for method in (NoWarmup(), ReverseStateReconstruction(0.2),
                       SmartsWarmup()):
            context = make_context("vpr")
            method.bind(context)
            method.skip(6000)
            method.pre_cluster()
            results[method.name] = method.cost.work_units()
        assert results["None"] < results["R$BP (20%)"] < results["S$BP"]
