"""Tests for the live-points checkpoint library (paper reference [18])."""

import pytest

from repro.branch import BranchPredictor, PredictorConfig, paper_predictor_config
from repro.cache import MemoryHierarchy, paper_hierarchy_config
from repro.livepoints import LivePointLibrary
from repro.sampling import (
    SampledSimulator,
    SamplingRegimen,
    SimulatorConfigs,
)
from repro.timing import CoreConfig
from repro.warmup import SmartsWarmup
from repro.workloads import build_workload


REGIMEN = SamplingRegimen(60_000, 6, 800, seed=9)


def configs():
    return SimulatorConfigs(
        hierarchy=paper_hierarchy_config(scale=32),
        predictor=paper_predictor_config(scale=32),
    )


@pytest.fixture(scope="module")
def library():
    workload = build_workload("twolf")
    return LivePointLibrary.generate(workload, REGIMEN, configs())


class TestStateSnapshots:
    def test_cache_roundtrip(self):
        hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=32))
        for address in range(0, 64 * 64, 64):
            hierarchy.timed_access(address, False, False, 0)
        state = hierarchy.export_state()
        clone = MemoryHierarchy(paper_hierarchy_config(scale=32))
        clone.load_state(state)
        for cache_name in ("l1i", "l1d", "l2"):
            assert getattr(clone, cache_name).state_fingerprint() == \
                getattr(hierarchy, cache_name).state_fingerprint()

    def test_cache_geometry_mismatch_rejected(self):
        hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=32))
        state = hierarchy.export_state()
        other = MemoryHierarchy(paper_hierarchy_config(scale=16))
        with pytest.raises(ValueError):
            other.load_state(state)

    def test_snapshot_is_deep(self):
        hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=32))
        hierarchy.timed_access(0x1000, False, False, 0)
        state = hierarchy.export_state()
        fingerprint = hierarchy.l1d.state_fingerprint()
        # Mutating the cache after export must not change the snapshot.
        for address in range(0, 64 * 256, 64):
            hierarchy.timed_access(address, False, False, 0)
        clone = MemoryHierarchy(paper_hierarchy_config(scale=32))
        clone.load_state(state)
        assert clone.l1d.state_fingerprint() == fingerprint

    def test_predictor_roundtrip(self):
        from repro.isa import Instruction, Opcode
        predictor = BranchPredictor(PredictorConfig(256, 64, 8))
        inst = Instruction(Opcode.BNE, rs1=1, rs2=2, target=50)
        for _ in range(10):
            predictor.update(5, inst, True, 50)
        predictor.update(7, Instruction(Opcode.CALL, target=20), True, 20)
        state = predictor.export_state()
        clone = BranchPredictor(PredictorConfig(256, 64, 8))
        clone.load_state(state)
        assert clone.pht.counters == predictor.pht.counters
        assert clone.pht.history == predictor.pht.history
        assert clone.btb.tags == predictor.btb.tags
        assert clone.ras.contents_from_top() == \
            predictor.ras.contents_from_top()

    def test_predictor_geometry_mismatch_rejected(self):
        predictor = BranchPredictor(PredictorConfig(256, 64, 8))
        state = predictor.export_state()
        other = BranchPredictor(PredictorConfig(512, 64, 8))
        with pytest.raises(ValueError):
            other.load_state(state)


class TestLibrary:
    def test_generation_captures_all_points(self, library):
        assert len(library) == REGIMEN.num_clusters
        starts = [point.start_instruction for point in library.points]
        assert starts == REGIMEN.cluster_starts()
        assert library.generation_seconds > 0

    def test_replay_matches_direct_sampled_simulation(self, library):
        """Replaying live points must give the same cluster IPCs as a
        SMARTS-warmed sampled simulation (the library stores exactly the
        state that simulation would have at each cluster entry)."""
        workload = build_workload("twolf")
        direct = SampledSimulator(workload, REGIMEN, configs()).run(
            SmartsWarmup()
        )
        replay = library.replay()
        assert replay.cluster_ipcs == pytest.approx(
            direct.cluster_ipcs, rel=1e-12,
        )

    def test_replay_is_much_faster_than_generation(self, library):
        replay = library.replay()
        assert replay.wall_seconds < library.generation_seconds

    def test_replay_supports_core_sweeps(self, library):
        wide = library.replay(CoreConfig(issue_width=4))
        narrow = library.replay(CoreConfig(issue_width=1))
        assert narrow.estimate.mean < wide.estimate.mean

    def test_replays_are_independent(self, library):
        first = library.replay()
        second = library.replay()
        assert first.cluster_ipcs == second.cluster_ipcs

    def test_result_api(self, library):
        replay = library.replay()
        assert replay.workload_name == "twolf"
        assert replay.passes_confidence_test(replay.estimate.mean)
        assert replay.relative_error(replay.estimate.mean) == 0.0


class TestPersistence:
    def test_save_load_roundtrip(self, library, tmp_path):
        path = tmp_path / "twolf.livepoints"
        library.save(path)
        loaded = LivePointLibrary.load(path)
        assert len(loaded) == len(library)
        assert loaded.replay().cluster_ipcs == library.replay().cluster_ipcs

    def test_load_rejects_foreign_pickles(self, tmp_path):
        import pickle
        path = tmp_path / "bogus.pkl"
        path.write_bytes(pickle.dumps({"not": "a library"}))
        with pytest.raises(TypeError):
            LivePointLibrary.load(path)
