"""Unit + property tests for the SimPoint k-means implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simpoint import (
    kmeans,
    random_projection,
    bic_score,
    choose_k,
)


def blobs(centers, per_cluster=20, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    for center in centers:
        points.append(
            np.asarray(center) + rng.normal(0, spread,
                                            (per_cluster, len(center)))
        )
    return np.vstack(points)


class TestKMeans:
    def test_k1_centroid_is_mean(self):
        points = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]])
        result = kmeans(points, 1)
        assert np.allclose(result.centroids[0], [1.0, 1.0])

    def test_recovers_separated_clusters(self):
        points = blobs([[0, 0], [10, 10], [0, 10]])
        result = kmeans(points, 3, seed=1)
        sizes = sorted(result.cluster_sizes())
        assert sizes == [20, 20, 20]

    def test_assignments_cover_all_points(self):
        points = blobs([[0, 0], [5, 5]])
        result = kmeans(points, 2)
        assert len(result.assignments) == len(points)
        assert set(result.assignments) <= set(range(2))

    def test_k_capped_at_n(self):
        points = np.array([[0.0], [1.0]])
        result = kmeans(points, 10)
        assert result.k == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((4, 2)), 0)

    def test_deterministic_given_seed(self):
        points = blobs([[0, 0], [5, 5]], seed=3)
        a = kmeans(points, 2, seed=9)
        b = kmeans(points, 2, seed=9)
        assert np.array_equal(a.assignments, b.assignments)

    def test_inertia_decreases_with_k(self):
        points = blobs([[0, 0], [10, 0], [0, 10], [10, 10]])
        inertia = [kmeans(points, k, seed=2).inertia for k in (1, 2, 4)]
        assert inertia[0] > inertia[1] > inertia[2]


class TestProjection:
    def test_reduces_dimensionality(self):
        vectors = np.random.default_rng(0).random((10, 100))
        projected = random_projection(vectors, dims=15)
        assert projected.shape == (10, 15)

    def test_small_inputs_pass_through(self):
        vectors = np.random.default_rng(0).random((10, 5))
        projected = random_projection(vectors, dims=15)
        assert projected.shape == (10, 5)

    def test_deterministic(self):
        vectors = np.random.default_rng(0).random((6, 50))
        assert np.array_equal(
            random_projection(vectors, seed=4),
            random_projection(vectors, seed=4),
        )

    def test_approximately_preserves_distances(self):
        rng = np.random.default_rng(1)
        vectors = rng.random((20, 400))
        projected = random_projection(vectors, dims=15, seed=0)
        original = np.linalg.norm(vectors[0] - vectors[1])
        reduced = np.linalg.norm(projected[0] - projected[1])
        assert reduced == pytest.approx(original, rel=0.6)


class TestBIC:
    def test_bic_prefers_true_cluster_count(self):
        points = blobs([[0, 0], [20, 20], [0, 20]], spread=0.1)
        scores = {
            k: bic_score(points, kmeans(points, k, seed=5))
            for k in (1, 2, 3, 6)
        }
        assert max(scores, key=scores.get) == 3

    def test_choose_k_returns_best(self):
        points = blobs([[0, 0], [20, 20]], spread=0.1)
        result = choose_k(points, max_k=5, seed=1)
        assert result.k == 2


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_kmeans_partitions_points(k, seed):
    rng = np.random.default_rng(seed)
    points = rng.random((24, 3))
    result = kmeans(points, k, seed=seed)
    assert result.cluster_sizes().sum() == 24
    assert result.inertia >= 0
