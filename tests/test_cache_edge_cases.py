"""Edge-case coverage for the cache substrate: unusual geometries,
write-back L1 hierarchies, and reconstruction under them."""

import numpy as np

from repro.cache import (
    BusConfig,
    Cache,
    CacheConfig,
    HierarchyConfig,
    MemoryHierarchy,
    WritePolicy,
)


def wbwa_l1_hierarchy() -> MemoryHierarchy:
    """A hierarchy with write-back L1s (not the paper's default) to
    exercise the dirty-victim L1 writeback paths."""
    return MemoryHierarchy(HierarchyConfig(
        l1i=CacheConfig("L1I", 2048, 64, 2, WritePolicy.WBWA, 1),
        l1d=CacheConfig("L1D", 1024, 64, 2, WritePolicy.WBWA, 1),
        l2=CacheConfig("L2", 16384, 64, 4, WritePolicy.WBWA, 8),
        l1_bus=BusConfig("L1bus", 16, 2),
        l2_bus=BusConfig("L2bus", 32, 1),
        memory_latency=60,
    ))


class TestNonPowerOfTwoSets:
    """CacheConfig allows set counts that are not powers of two (size
    divisible by line*assoc is the only constraint); address splitting
    must still round-trip."""

    def make(self):
        # 3 sets x 2 ways x 64B lines = 384 bytes.
        return Cache(CacheConfig("odd", 384, 64, 2, WritePolicy.WBWA, 1))

    def test_split_roundtrip(self):
        cache = self.make()
        for address in (0x0, 0x40, 0x80, 0xC0, 0x1000, 0xABCD40):
            set_index, tag = cache.split_address(address)
            assert 0 <= set_index < 3
            assert cache._address_of(set_index, tag) == \
                cache.line_address(address)

    def test_distinct_lines_distinct_slots(self):
        cache = self.make()
        seen = set()
        for line in range(30):
            slot = cache.split_address(line * 64)
            assert slot not in seen
            seen.add(slot)

    def test_access_and_reconstruction_work(self):
        cache = self.make()
        stream = [line * 64 for line in (0, 3, 6, 1, 4, 0, 9)]
        for address in stream:
            cache.access(address)
        forward = cache.state_fingerprint()

        reverse = self.make()
        reverse.begin_reconstruction()
        for address in reversed(stream):
            reverse.reconstruct_reference(address)
        assert reverse.state_fingerprint() == forward


class TestWritebackL1Hierarchy:
    def test_dirty_l1_victim_writes_back_through_l2(self):
        hierarchy = wbwa_l1_hierarchy()
        sets = hierarchy.l1d.num_sets
        stride = sets * 64
        hierarchy.timed_access(0x0, True, False, 0)        # dirty line
        hierarchy.timed_access(stride, False, False, 100)
        hierarchy.timed_access(2 * stride, False, False, 200)  # evicts dirty
        assert hierarchy.l1d.stats.writebacks >= 1

    def test_warm_access_matches_timed_state_with_wbwa_l1(self):
        warm = wbwa_l1_hierarchy()
        timed = wbwa_l1_hierarchy()
        rng = np.random.default_rng(3)
        now = 0
        for _ in range(4000):
            address = int(rng.integers(0, 1 << 18)) & ~0x7
            is_write = bool(rng.random() < 0.4)
            warm.warm_access(address, is_write, False)
            now += timed.timed_access(address, is_write, False, now)
        for name in ("l1d", "l2"):
            assert getattr(warm, name).state_fingerprint() == \
                getattr(timed, name).state_fingerprint(), name

    def test_wbwa_store_hit_is_fast(self):
        hierarchy = wbwa_l1_hierarchy()
        hierarchy.timed_access(0x40, True, False, 0)
        latency = hierarchy.timed_access(0x40, True, False, 1000)
        assert latency == hierarchy.l1d.config.hit_latency


class TestDirectMappedExtreme:
    def test_direct_mapped_cache(self):
        cache = Cache(CacheConfig("dm", 512, 64, 1, WritePolicy.WTNA, 1))
        cache.access(0x0)
        cache.access(512)     # same set, evicts
        assert not cache.probe(0x0)
        assert cache.probe(512)

    def test_fully_associative_cache(self):
        cache = Cache(CacheConfig("fa", 256, 64, 4, WritePolicy.WTNA, 1))
        assert cache.num_sets == 1
        for line in range(4):
            cache.access(line * 64)
        cache.access(0)        # refresh line 0
        cache.access(4 * 64)   # evicts line 1 (LRU)
        assert cache.probe(0)
        assert not cache.probe(64)


class TestReconstructionOnEmptyCache:
    def test_reconstruct_into_invalid_ways(self):
        cache = Cache(CacheConfig("c", 512, 64, 2, WritePolicy.WTNA, 1))
        cache.begin_reconstruction()
        assert cache.reconstruct_reference(0x0)
        assert cache.probe(0x0)
        # The invalid companion way is untouched.
        set_index, _ = cache.split_address(0x0)
        assert cache.tags[set_index].count(None) == 1
