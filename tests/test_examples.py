"""Smoke tests for the runnable examples.

Every example must at least compile; the fast ones are executed end to
end as subprocesses so their console workflow stays healthy.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in ALL_EXAMPLES}
    assert {"quickstart.py", "warmup_comparison.py",
            "simpoint_vs_sampling.py", "custom_workload.py",
            "reconstruction_anatomy.py"} <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def _run(path, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True, text=True, timeout=timeout, check=False,
    )


def test_reconstruction_anatomy_runs():
    result = _run(EXAMPLES_DIR / "reconstruction_anatomy.py")
    assert result.returncode == 0, result.stderr
    assert "states identical: True" in result.stdout
    assert "reconstructed RAS (top first): [51, 41]" in result.stdout


def test_custom_workload_runs():
    result = _run(EXAMPLES_DIR / "custom_workload.py")
    assert result.returncode == 0, result.stderr
    assert "true IPC" in result.stdout
    assert "R$BP (20%)" in result.stdout
