"""Unit tests for the set-associative cache: geometry, LRU, write policies."""

import pytest

from repro.cache import Cache, CacheConfig, WritePolicy


def make_cache(size=1024, line=64, assoc=4,
               policy=WritePolicy.WTNA) -> Cache:
    return Cache(CacheConfig(
        name="test", size_bytes=size, line_bytes=line,
        associativity=assoc, write_policy=policy, hit_latency=1,
    ))


class TestConfigValidation:
    def test_size_must_divide(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 1000, 64, 4, WritePolicy.WTNA, 1)

    def test_line_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 960, 48, 4, WritePolicy.WTNA, 1)

    def test_positive_sizes(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 0, 64, 4, WritePolicy.WTNA, 1)

    def test_num_sets(self):
        config = CacheConfig("x", 1024, 64, 4, WritePolicy.WTNA, 1)
        assert config.num_sets == 4


class TestAddressMath:
    def test_line_address(self):
        cache = make_cache()
        assert cache.line_address(0x12345) == 0x12340

    def test_split_roundtrip(self):
        cache = make_cache()
        for address in (0x0, 0x40, 0x1000, 0xDEADBEC0):
            set_index, tag = cache.split_address(address)
            rebuilt = cache._address_of(set_index, tag)
            assert rebuilt == cache.line_address(address)

    def test_same_set_different_tags(self):
        cache = make_cache()  # 4 sets, 64B lines -> set stride 256B
        s1, t1 = cache.split_address(0x000)
        s2, t2 = cache.split_address(0x100)
        assert s1 == s2
        assert t1 != t2


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0x1000).hit
        assert cache.access(0x1000).hit

    def test_same_line_different_offsets_hit(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x103F).hit

    def test_lru_eviction_order(self):
        cache = make_cache(assoc=2, size=512)  # 4 sets
        stride = 4 * 64  # same set
        a, b, c = 0x0, stride, 2 * stride
        cache.access(a)
        cache.access(b)
        cache.access(c)                # evicts a (LRU)
        assert not cache.probe(a)
        assert cache.probe(b) and cache.probe(c)

    def test_hit_refreshes_recency(self):
        cache = make_cache(assoc=2, size=512)
        stride = 4 * 64
        a, b, c = 0x0, stride, 2 * stride
        cache.access(a)
        cache.access(b)
        cache.access(a)                # a becomes MRU
        cache.access(c)                # evicts b
        assert cache.probe(a) and cache.probe(c)
        assert not cache.probe(b)

    def test_probe_does_not_disturb_state(self):
        cache = make_cache(assoc=2, size=512)
        stride = 4 * 64
        a, b, c = 0x0, stride, 2 * stride
        cache.access(a)
        cache.access(b)
        cache.probe(a)                 # must NOT refresh a
        cache.access(c)                # evicts a (still LRU)
        assert not cache.probe(a)

    def test_stats_counting(self):
        cache = make_cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x40)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate() == pytest.approx(2 / 3)


class TestWritePolicies:
    def test_wtna_write_miss_does_not_allocate(self):
        cache = make_cache(policy=WritePolicy.WTNA)
        result = cache.access(0x1000, is_write=True)
        assert not result.hit
        assert not cache.probe(0x1000)

    def test_wtna_write_hit_updates_recency(self):
        cache = make_cache(assoc=2, size=512, policy=WritePolicy.WTNA)
        stride = 4 * 64
        a, b, c = 0x0, stride, 2 * stride
        cache.access(a)
        cache.access(b)
        cache.access(a, is_write=True)  # refresh a
        cache.access(c)
        assert cache.probe(a)
        assert not cache.probe(b)

    def test_wtna_never_dirty(self):
        cache = make_cache(policy=WritePolicy.WTNA)
        cache.access(0x0)
        cache.access(0x0, is_write=True)
        assert not any(any(row) for row in cache.dirty)

    def test_wbwa_write_miss_allocates(self):
        cache = make_cache(policy=WritePolicy.WBWA)
        cache.access(0x1000, is_write=True)
        assert cache.probe(0x1000)

    def test_wbwa_dirty_eviction_reports_writeback(self):
        cache = make_cache(assoc=1, size=256, policy=WritePolicy.WBWA)
        stride = 4 * 64
        cache.access(0x0, is_write=True)         # dirty
        result = cache.access(stride)            # evicts dirty line 0
        assert result.writeback_address == 0x0
        assert result.evicted_address == 0x0
        assert cache.stats.writebacks == 1

    def test_wbwa_clean_eviction_no_writeback(self):
        cache = make_cache(assoc=1, size=256, policy=WritePolicy.WBWA)
        stride = 4 * 64
        cache.access(0x0)                        # clean
        result = cache.access(stride)
        assert result.writeback_address is None
        assert result.evicted_address == 0x0


class TestMaintenance:
    def test_reset_clears_everything(self):
        cache = make_cache()
        cache.access(0x0, is_write=False)
        cache.reset()
        assert not cache.probe(0x0)
        assert cache.stats.accesses == 0
        assert cache.contents() == set()

    def test_contents_lists_lines(self):
        cache = make_cache()
        cache.access(0x0)
        cache.access(0x40)
        assert cache.contents() == {0x0, 0x40}

    def test_fingerprint_changes_with_recency(self):
        cache = make_cache(assoc=2, size=512)
        stride = 4 * 64
        cache.access(0x0)
        cache.access(stride)
        before = cache.state_fingerprint()
        cache.access(0x0)  # same contents, different recency
        assert cache.state_fingerprint() != before

    def test_updates_counter_tracks_accesses(self):
        cache = make_cache()
        for i in range(5):
            cache.access(i * 64)
        assert cache.stats.updates == 5
