"""Unit tests for the sampled-simulation controller."""

import pytest

from repro.branch import PredictorConfig
from repro.cache import paper_hierarchy_config
from repro.sampling import (
    SampledSimulator,
    SamplingRegimen,
    SimulatorConfigs,
    measure_true_ipc,
)
from repro.timing import CoreConfig
from repro.warmup import NoWarmup, SmartsWarmup
from repro.core import ReverseStateReconstruction
from repro.workloads import build_workload


SMALL = SamplingRegimen(total_instructions=30_000, num_clusters=5,
                        cluster_size=800, seed=11)


@pytest.fixture(scope="module")
def workload():
    return build_workload("ammp")


@pytest.fixture(scope="module")
def simulator(workload):
    return SampledSimulator(workload, SMALL)


class TestSampledRun:
    def test_cluster_count(self, simulator):
        result = simulator.run(NoWarmup())
        assert len(result.cluster_ipcs) == SMALL.num_clusters

    def test_positive_ipcs(self, simulator):
        result = simulator.run(NoWarmup())
        assert all(ipc > 0 for ipc in result.cluster_ipcs)

    def test_metadata(self, simulator, workload):
        result = simulator.run(SmartsWarmup())
        assert result.workload_name == workload.name
        assert result.method_name == "S$BP"
        assert result.regimen is SMALL
        assert result.wall_seconds > 0

    def test_cost_covers_population(self, simulator):
        result = simulator.run(NoWarmup())
        cost = result.cost
        covered = cost.functional_instructions + cost.hot_instructions
        last_start = SMALL.cluster_starts()[-1]
        assert covered == last_start + SMALL.cluster_size

    def test_deterministic_replay(self, simulator):
        a = simulator.run(SmartsWarmup())
        b = simulator.run(SmartsWarmup())
        assert a.cluster_ipcs == b.cluster_ipcs

    def test_methods_share_cluster_positions(self, simulator):
        """Sampling bias is held constant: every method samples the same
        clusters, so IPC differences isolate non-sampling bias."""
        none_result = simulator.run(NoWarmup())
        smarts_result = simulator.run(SmartsWarmup())
        assert none_result.regimen.cluster_starts() == \
            smarts_result.regimen.cluster_starts()

    def test_rsr_runs_end_to_end(self, simulator):
        result = simulator.run(ReverseStateReconstruction(0.4))
        assert len(result.cluster_ipcs) == SMALL.num_clusters
        assert result.cost.log_records > 0
        assert result.cost.cache_updates > 0

    def test_estimate_consistency(self, simulator):
        result = simulator.run(NoWarmup())
        assert result.estimate.mean == pytest.approx(
            sum(result.cluster_ipcs) / len(result.cluster_ipcs)
        )

    def test_relative_error_and_confidence_api(self, simulator):
        result = simulator.run(SmartsWarmup())
        assert result.relative_error(result.estimate.mean) == 0.0
        assert result.passes_confidence_test(result.estimate.mean)


class TestTrueRun:
    def test_measure_true_ipc(self, workload):
        result = measure_true_ipc(workload, 20_000)
        assert result.instructions == 20_000
        assert 0 < result.ipc <= 4.0
        assert result.workload_name == workload.name

    def test_true_run_deterministic(self, workload):
        a = measure_true_ipc(workload, 15_000)
        b = measure_true_ipc(workload, 15_000)
        assert a.cycles == b.cycles


class TestConfigs:
    def test_custom_configs_respected(self, workload):
        configs = SimulatorConfigs(
            hierarchy=paper_hierarchy_config(scale=32),
            predictor=PredictorConfig(512, 128, 8),
            core=CoreConfig(issue_width=1),
        )
        narrow = SampledSimulator(workload, SMALL, configs).run(NoWarmup())
        wide = SampledSimulator(workload, SMALL).run(NoWarmup())
        assert narrow.estimate.mean < wide.estimate.mean

    def test_default_configs_are_paper_geometry(self):
        configs = SimulatorConfigs()
        assert configs.core.fetch_width == 8
        assert configs.core.rob_entries == 64
        assert configs.predictor.ras_entries == 8
