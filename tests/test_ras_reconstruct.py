"""Unit + property tests for reverse RAS reconstruction (Figure 4)."""

from hypothesis import given, settings, strategies as st

from repro.branch import PredictorConfig, ReturnAddressStack
from repro.core.logging import BR_CALL, BR_COND, BR_JUMP, BR_RET
from repro.core.ras_reconstruct import (
    reconstruct_ras,
    reconstruct_ras_contents,
)


def call(pc):
    return (pc, pc + 100, True, BR_CALL)


def ret(pc):
    return (pc, 0, True, BR_RET)


def cond(pc):
    return (pc, pc + 1, False, BR_COND)


class TestCounterAlgorithm:
    def test_simple_pushes(self):
        log = [call(10), call(20), call(30)]
        assert reconstruct_ras_contents(log, 8) == [31, 21, 11]

    def test_pop_cancels_most_recent_push(self):
        # call 10, call 20, ret (consumes 20's frame), so only 10 survives.
        log = [call(10), call(20), ret(25)]
        assert reconstruct_ras_contents(log, 8) == [11]

    def test_figure4_style_sequence(self):
        # Forward: push A, push B, pop, push C, pop, pop, push D, push E.
        log = [call(1), call(2), ret(3), call(4), ret(5), ret(6),
               call(7), call(8)]
        # Surviving frames newest-first: E (9), D (8).
        assert reconstruct_ras_contents(log, 8) == [9, 8]

    def test_reconstruction_stops_at_capacity(self):
        log = [call(pc) for pc in range(20)]
        contents = reconstruct_ras_contents(log, 4)
        assert contents == [20, 19, 18, 17]

    def test_excess_pops_ignored(self):
        log = [ret(1), ret(2), call(3)]
        # Both pops precede the call in reverse order... walking backwards:
        # call(3) is seen first with zero outstanding pops -> survives.
        assert reconstruct_ras_contents(log, 8) == [4]

    def test_non_call_records_ignored(self):
        log = [cond(1), call(2), cond(3), (4, 9, True, BR_JUMP)]
        assert reconstruct_ras_contents(log, 8) == [3]

    def test_empty_log(self):
        assert reconstruct_ras_contents([], 8) == []

    def test_reconstruct_ras_installs_contents(self):
        ras = ReturnAddressStack(PredictorConfig(64, 64, 4))
        recovered = reconstruct_ras(ras, [call(10), call(20)])
        assert recovered == 2
        assert ras.peek() == 21
        assert ras.contents_from_top() == [21, 11]


@st.composite
def call_ret_logs(draw):
    events = draw(st.lists(
        st.sampled_from(["call", "ret", "other"]), min_size=0, max_size=60,
    ))
    log = []
    for position, kind in enumerate(events):
        pc = position * 3 + 1
        if kind == "call":
            log.append(call(pc))
        elif kind == "ret":
            log.append(ret(pc))
        else:
            log.append(cond(pc))
    return log


def _forward_overflowed(log, capacity):
    """Did a forward finite RAS of `capacity` ever overwrite a live frame?"""
    depth = 0
    for _pc, _next, _taken, kind in log:
        if kind == BR_CALL:
            if depth == capacity:
                return True
            depth += 1
        elif kind == BR_RET and depth > 0:
            depth -= 1
    return False


@given(call_ret_logs(), st.integers(min_value=1, max_value=8))
@settings(max_examples=300, deadline=None)
def test_reverse_reconstruction_matches_forward_simulation(log, capacity):
    """Walking the log forward through a real RAS (starting empty) and
    reconstructing in reverse must agree on the live stack contents —
    exactly, whenever the forward RAS never overflowed.  (On overflow the
    paper's counter algorithm is a best-effort approximation: a circular
    overwrite destroys a frame the reverse walk cannot observe.)"""
    config = PredictorConfig(64, 64, capacity)
    forward = ReturnAddressStack(config)
    for pc, _next, _taken, kind in log:
        if kind == BR_CALL:
            forward.push(pc + 1)
        elif kind == BR_RET:
            forward.pop()

    reconstructed = reconstruct_ras_contents(log, capacity)
    if not _forward_overflowed(log, capacity):
        assert reconstructed == forward.contents_from_top()
    else:
        # Approximation: the reconstructed stack may resurrect frames the
        # circular overwrite destroyed, but never fewer than survive, and
        # the top of stack (the next RET's prediction) still matches when
        # anything survives at all.
        survivors = forward.contents_from_top()
        assert len(reconstructed) >= len(survivors)
        if survivors:
            assert reconstructed[0] == survivors[0]


def test_overflow_approximation_example():
    """Documented deviation: capacity-1 RAS, two pushes then a pop.
    Forward loses the first frame to the overwrite; the reverse counter
    algorithm resurrects it."""
    log = [call(1), call(4), ret(7)]
    assert reconstruct_ras_contents(log, 1) == [2]


@given(call_ret_logs())
@settings(max_examples=100, deadline=None)
def test_recovered_addresses_come_from_calls(log):
    contents = reconstruct_ras_contents(log, 8)
    call_returns = {pc + 1 for pc, _n, _t, kind in log if kind == BR_CALL}
    assert set(contents) <= call_returns
