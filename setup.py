"""Setup shim for environments whose pip lacks the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (`pip install -e .`).
"""

from setuptools import setup

setup()
