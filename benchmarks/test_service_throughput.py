"""Perf bench: service job throughput, cache-hit speedup, and
backend equivalence.

Three claims are asserted here and recorded into ``BENCH_pr8.json`` at
the repo root for the trajectory gate:

- **The service adds bookkeeping, not simulation.**  A job submitted
  over HTTP produces the byte-identical payload of an inline
  :func:`repro.api.execute_request` call; throughput (jobs/sec) is
  recorded for trend-watching (machine-dependent, never gated).
- **Repeats are near-free.**  Resubmitting the same requests is served
  from the content-addressed result cache without re-entering
  execution — asserted via the service counters (``executed`` stays
  put, ``cache_hits`` rises) — and the per-job wall speedup is gated.
- **Backends are interchangeable.**  The same matrix request run
  through every registered executor backend yields one identical
  payload (deterministic fold), recorded as a never-flip boolean.
"""

from __future__ import annotations

import json
import pathlib
import time

from conftest import emit
from repro.api import RunRequest, execute_request
from repro.harness import format_table
from repro.harness.executor import registered_executor_names
from repro.harness.options import RunOptions
from repro.service import ServiceClient, SimulationService

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr8.json"
WORKLOADS = ("gcc", "mcf")
METHODS = ("R$BP (20%)",)
MIN_CACHE_HIT_SPEEDUP = 2.0
#: The gated speedup metric saturates here: real runs land far above
#: it (hundreds), so recording the clamped value keeps the trajectory
#: gate's 15%-slack comparison deterministic across machines while the
#: raw number stays in the timing block.
CACHE_HIT_SPEEDUP_CAP = 10.0


def _requests(scale):
    return [
        RunRequest(kind="sample", workloads=(name,), methods=METHODS,
                   design=scale.name)
        for name in WORKLOADS
    ]


def test_service_throughput(benchmark, scale, tmp_path):
    requests = _requests(scale)

    # Inline baseline: the exact payloads the service must reproduce.
    start = time.perf_counter()
    inline = [execute_request(request, cache="off")
              for request in requests]
    inline_seconds = time.perf_counter() - start

    cache_dir = tmp_path / "service-cache"
    service = SimulationService(
        options=RunOptions(scale=scale.name),
        executor="threads",
        cache=str(cache_dir),
        port=0,
    )
    with service:
        client = ServiceClient(service.url)

        # Cold pass: every job executes for real.
        start = time.perf_counter()
        job_ids = [client.submit(request) for request in requests]
        fresh = [client.result(job_id) for job_id in job_ids]
        fresh_seconds = time.perf_counter() - start

        service_matches_inline = all(
            remote.payload == local.payload
            for remote, local in zip(fresh, inline)
        )
        assert service_matches_inline, \
            "service payloads diverged from inline execution"
        assert not any(result.cached for result in fresh)

        # Warm pass: same requests, served from the result cache.
        start = time.perf_counter()
        job_ids = [client.submit(request) for request in requests]
        cached = [client.result(job_id) for job_id in job_ids]
        cached_seconds = time.perf_counter() - start

        assert all(result.cached for result in cached)
        cache_hits_identical = all(
            hit.payload == cold.payload
            for hit, cold in zip(cached, fresh)
        )
        assert cache_hits_identical
        counters = client.stats()["counters"]

    # The counters prove the warm pass never re-entered execution.
    assert counters["executed"] == len(requests)
    assert counters["cache_hits"] == len(requests)
    assert counters["jobs_completed"] == 2 * len(requests)

    cache_hit_speedup = fresh_seconds / max(cached_seconds, 1e-9)
    assert cache_hit_speedup >= MIN_CACHE_HIT_SPEEDUP, (
        f"cache-hit pass only {cache_hit_speedup:.1f}x faster than the "
        f"cold pass (expected >= {MIN_CACHE_HIT_SPEEDUP:.0f}x)"
    )

    # Backend equivalence: one matrix request, every registered backend,
    # one payload.
    matrix_request = RunRequest(
        kind="matrix", workloads=WORKLOADS, methods=("rsr", "smarts"),
        design=scale.name, jobs=2,
    )
    payloads = {}
    backend_seconds = {}
    for name in registered_executor_names():
        start = time.perf_counter()
        result = execute_request(matrix_request, executor=name,
                                 cache="off")
        backend_seconds[name] = time.perf_counter() - start
        payloads[name] = json.dumps(result.payload, sort_keys=True)
    backends_bit_identical = len(set(payloads.values())) == 1
    assert backends_bit_identical, (
        "matrix payloads diverged across backends: "
        f"{sorted(payloads)}"
    )

    payload = {
        "bench": "service_throughput",
        "scale": scale.name,
        "workloads": list(WORKLOADS),
        "backends": registered_executor_names(),
        # Booleans are never-flip guarantees; the cache-hit speedup is
        # asserted >= MIN_CACHE_HIT_SPEEDUP above on both the baseline
        # and every future run.  Raw throughput is machine-dependent and
        # lands in the informational timing block only.
        "summary": {
            "service_matches_inline": service_matches_inline,
            "cache_hits_identical": cache_hits_identical,
            "backends_bit_identical": backends_bit_identical,
            "cache_hit_wall_speedup": min(cache_hit_speedup,
                                          CACHE_HIT_SPEEDUP_CAP),
        },
        "timing": {
            "cache_hit_wall_speedup_raw": cache_hit_speedup,
            "inline_seconds": inline_seconds,
            "service_fresh_seconds": fresh_seconds,
            "service_cached_seconds": cached_seconds,
            "service_jobs_per_second_fresh":
                len(requests) / max(fresh_seconds, 1e-9),
            "service_jobs_per_second_cached":
                len(requests) / max(cached_seconds, 1e-9),
            "matrix_backend_seconds": backend_seconds,
        },
        "counters": counters,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")

    rows = [
        ["inline", f"{inline_seconds:.2f}s", "-", "-"],
        ["service (fresh)", f"{fresh_seconds:.2f}s",
         f"{len(requests) / max(fresh_seconds, 1e-9):.2f}",
         "payloads == inline"],
        ["service (cached)", f"{cached_seconds:.2f}s",
         f"{len(requests) / max(cached_seconds, 1e-9):.2f}",
         f"{cache_hit_speedup:.1f}x vs fresh, 0 re-executions"],
    ] + [
        [f"matrix via {name}", f"{seconds:.2f}s", "-",
         "bit-identical" if backends_bit_identical else "DIVERGED"]
        for name, seconds in sorted(backend_seconds.items())
    ]

    def render():
        return format_table(
            ["path", "wall", "jobs/sec", "equivalence"], rows,
            title=f"Service throughput ({scale.name} tier): "
                  f"{len(requests)} jobs, cache-hit speedup "
                  f"{cache_hit_speedup:.1f}x",
        )

    text = benchmark.pedantic(render, rounds=3, iterations=1)
    emit("service_throughput", text)
