"""Perf bench: observability off-mode bit-identity and logging overhead.

The PR's acceptance bar, made continuously observable and recorded into
``BENCH_pr9.json`` at the repo root for the trajectory gate:

- **Off means off.**  With ``REPRO_SERVICE_LOG`` unset and nobody
  scraping ``/metrics``, a service job's payload is byte-identical to
  an inline :func:`repro.api.execute_request` call, and no ``run_id``
  leaks into any result payload (correlation is observability-only;
  results stay content-addressed).
- **On is still correct.**  With the structured log, the events
  firehose, the cluster trace, and concurrent ``/metrics`` scrapes all
  enabled, the payloads are *still* byte-identical to inline — the
  whole observability stack is stamp-and-append, never
  result-mutating — and the scrape plus the offline ``repro metrics``
  twin both satisfy the strict exposition parser.
- **The join works.**  Every job's ``run_id`` (from its status
  payload) appears in the service log, the events firehose, and the
  trace records.
- **On is cheap.**  The full-observability pass is wall-bounded
  against the off pass (min ratio over alternating off/on pairs, the
  same noise-damping scheme as ``test_span_overhead.py``).
"""

from __future__ import annotations

import json
import pathlib
import time

from conftest import emit
from repro.api import RunRequest, execute_request
from repro.harness import format_table
from repro.harness.options import RunOptions
from repro.service import ServiceClient, SimulationService
from repro.telemetry import (
    exposition_from_records,
    parse_exposition,
    read_events,
    read_trace,
)

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr9.json"
WORKLOADS = ("gcc", "mcf")
METHODS = ("R$BP (20%)",)
#: Alternating (off, on) service passes; the recorded ratio is the
#: minimum over pairs so a one-off scheduler hiccup on either side
#: cannot flip the gate.
PAIRS = 2
#: Hard bound on the observed overhead of full observability.
OVERHEAD_BOUND = 1.5


def _requests(scale):
    return [
        RunRequest(kind="sample", workloads=(name,), methods=METHODS,
                   design=scale.name)
        for name in WORKLOADS
    ]


def _run_service_pass(scale, requests, *, observe, artifact_dir):
    """One cold service pass; returns (payload blobs, wall, artifacts)."""
    if observe:
        artifact_dir.mkdir(parents=True, exist_ok=True)
        options = RunOptions(
            scale=scale.name,
            service_log=str(artifact_dir / "service.jsonl"),
            events=str(artifact_dir / "events.jsonl"),
            trace=str(artifact_dir / "trace.jsonl"),
        )
    else:
        options = RunOptions(scale=scale.name)
    service = SimulationService(options=options, executor="threads",
                                cache="off", port=0)
    artifacts = {"run_ids": [], "metrics_text": None, "counters": None}
    with service:
        client = ServiceClient(service.url)
        start = time.perf_counter()
        job_ids = [client.submit(request) for request in requests]
        if observe:
            # Scrape mid-flight: the exposition must parse while jobs
            # are executing, not just at rest.
            parse_exposition(client.metrics())
        results = [client.result(job_id) for job_id in job_ids]
        seconds = time.perf_counter() - start
        if observe:
            artifacts["run_ids"] = [client.status(job_id)["run_id"]
                                    for job_id in job_ids]
            artifacts["metrics_text"] = client.metrics()
            artifacts["counters"] = client.stats()["counters"]
    blobs = [json.dumps(result.payload, sort_keys=True)
             for result in results]
    return blobs, seconds, artifacts


def test_metrics_overhead(benchmark, scale, tmp_path):
    requests = _requests(scale)
    inline = [
        json.dumps(execute_request(request, cache="off").payload,
                   sort_keys=True)
        for request in requests
    ]

    off_seconds, on_seconds = [], []
    off_identical = on_identical = True
    run_id_leaked = False
    artifacts = {}
    for pair in range(PAIRS):
        off_blobs, seconds, _ = _run_service_pass(
            scale, requests, observe=False,
            artifact_dir=tmp_path / f"off-{pair}")
        off_seconds.append(seconds)
        off_identical &= off_blobs == inline
        run_id_leaked |= any("run_id" in blob for blob in off_blobs)

        on_blobs, seconds, artifacts = _run_service_pass(
            scale, requests, observe=True,
            artifact_dir=tmp_path / f"on-{pair}")
        on_seconds.append(seconds)
        on_identical &= on_blobs == inline

    assert off_identical, \
        "observability-off service payloads diverged from inline"
    assert on_identical, \
        "observability-on service payloads diverged from inline"
    assert not run_id_leaked, "run_id leaked into a result payload"

    # The last on-pass's artifacts carry the acceptance grep: every
    # job's run_id joins the service log, the firehose, and the trace.
    last_dir = tmp_path / f"on-{PAIRS - 1}"
    log_lines = [json.loads(line) for line in
                 (last_dir / "service.jsonl").read_text().splitlines()]
    events = read_events(str(last_dir / "events.jsonl"))
    trace_records = read_trace(str(last_dir / "trace.jsonl"))
    run_id_join_complete = bool(artifacts["run_ids"]) and all(
        any(line.get("run_id") == run_id for line in log_lines)
        and any(event.get("run_id") == run_id for event in events)
        and any(record.get("run_id") == run_id
                for record in trace_records)
        for run_id in artifacts["run_ids"]
    )
    assert run_id_join_complete, \
        "a job's run_id is missing from the log, events, or trace"

    # Both exposition flavors must satisfy the strict parser: the live
    # scrape and the offline `repro metrics` rendering of the trace.
    live_families = parse_exposition(artifacts["metrics_text"])
    offline_families = parse_exposition(
        exposition_from_records(trace_records).render())
    exposition_valid = (
        "repro_job_run_seconds" in live_families
        and "repro_job_queue_wait_seconds" in live_families
        and "repro_service_jobs_submitted_total" in live_families
        and "repro_clusters_total" in offline_families
        and "repro_run_info" in offline_families
    )
    assert exposition_valid, "exposition families incomplete"

    pair_ratios = [on / off for on, off in zip(on_seconds, off_seconds)]
    overhead_ratio = min(pair_ratios)
    assert overhead_ratio <= OVERHEAD_BOUND, (
        f"full observability costs {overhead_ratio:.3f}x the off pass "
        f"(bound {OVERHEAD_BOUND}x)"
    )

    payload = {
        "bench": "metrics_overhead",
        "scale": scale.name,
        "workloads": list(WORKLOADS),
        # Booleans are never-flip guarantees; the overhead ratio is
        # lower-is-better and asserted <= OVERHEAD_BOUND on both the
        # baseline and every future run.
        "summary": {
            "observability_off_bit_identical": off_identical,
            "observability_on_bit_identical": on_identical,
            "run_id_join_complete": run_id_join_complete,
            "exposition_valid": exposition_valid,
            "observability_on_overhead_ratio": overhead_ratio,
        },
        "timing": {
            "off_pass_seconds": off_seconds,
            "on_pass_seconds": on_seconds,
            "pair_ratios": pair_ratios,
        },
        "counters": artifacts["counters"],
        "artifact_lines": {
            "service_log": len(log_lines),
            "events": len(events),
            "trace_records": len(trace_records),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")

    rows = [
        ["service, observability off",
         f"{min(off_seconds):.2f}s", "payloads == inline"],
        ["service, log+events+trace+scrapes",
         f"{min(on_seconds):.2f}s",
         f"{overhead_ratio:.3f}x off-pass, payloads == inline"],
        ["run_id join",
         f"{len(artifacts['run_ids'])} jobs",
         "log + events + trace all stamped"],
        ["exposition",
         f"{len(live_families)} live / {len(offline_families)} offline",
         "strict parser clean"],
    ]

    def render():
        return format_table(
            ["path", "wall", "guarantee"], rows,
            title=f"Observability overhead ({scale.name} tier): "
                  f"{len(requests)} jobs/pass, {PAIRS} off/on pairs",
        )

    text = benchmark.pedantic(render, rounds=3, iterations=1)
    emit("metrics_overhead", text)
