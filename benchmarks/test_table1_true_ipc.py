"""Table 1: true IPC and sampling regimen for each workload.

Regenerates the paper's baseline table: the full-trace detailed-simulation
IPC of every benchmark plus the sampling regimen used by all subsequent
experiments.  The benchmark times one full-trace detailed run.
"""

from conftest import emit
from repro.harness import format_table1, true_run_for
from repro.sampling import measure_true_ipc
from repro.workloads import PAPER_WORKLOADS, build_workload


def test_table1_true_ipc(benchmark, scale, matrix):
    workload = build_workload("twolf")

    def one_true_run():
        return measure_true_ipc(
            workload, scale.total_instructions // 4, scale.configs(),
            warmup_prefix=scale.warmup_prefix,
        )

    result = benchmark.pedantic(one_true_run, rounds=1, iterations=1)
    assert result.instructions == scale.total_instructions // 4

    emit("table1_true_ipc", format_table1(matrix))

    for name in PAPER_WORKLOADS:
        true_run = true_run_for(name, scale)
        assert true_run.instructions == scale.total_instructions
        # IPC must be positive and below the 4-wide retire bound.
        assert 0.0 < true_run.ipc <= 4.0

    # mcf (pointer chasing) must be the slowest benchmark, as in the
    # paper's Table 1 where mcf has by far the lowest true IPC.
    ipcs = {name: true_run_for(name, scale).ipc for name in PAPER_WORKLOADS}
    assert min(ipcs, key=ipcs.get) == "mcf"
