"""Appendix: 95% confidence-interval tests for every method x workload.

Regenerates the paper's confidence grid: does each sampled estimate's 95%
interval cover the true IPC?  Expected shape: methods that repair state
(SMARTS, high-fraction RSR) pass on most workloads; no warm-up fails on
most (the paper's None row fails 7 of 9).
"""

from conftest import emit
from repro.harness import format_per_workload
from repro.warmup import paper_method_names


def test_appendix_confidence(benchmark, matrix):
    names = paper_method_names()

    def render():
        return format_per_workload(
            matrix, names, value="ci",
            title="Appendix: 95% confidence tests "
                  "(yes = interval covers true IPC)",
        )

    text = benchmark.pedantic(render, rounds=5, iterations=1)
    emit("appendix_confidence", text)

    def passes(method):
        return sum(
            experiment.outcomes[method].passes_confidence
            for experiment in matrix.values()
        )

    # State-repairing methods pass far more often than no warm-up.
    assert passes("R$BP (100%)") >= passes("None")
    assert passes("S$BP") >= passes("None")
    # The paper: at high fractions the reverse method passes for all
    # workloads; allow one outlier at reduced scale.
    assert passes("R$BP (100%)") >= len(matrix) - 2
    # No warm-up must fail somewhere (otherwise the experiment has no
    # cold-start problem to solve).
    assert passes("None") < len(matrix)
