"""Figure 4: reverse return-address-stack reconstruction.

Regenerates the paper's forward/reverse call-sequence example and
benchmarks reconstruction over a deep call trace.
"""

import numpy as np

from conftest import emit
from repro.branch import PredictorConfig, ReturnAddressStack
from repro.core import reconstruct_ras_contents
from repro.core.logging import BR_CALL, BR_RET
from repro.harness import format_table


def test_figure4_worked_example(benchmark):
    # Forward: push A@10, push B@20, pop, push C@30, pop, pop,
    #          push D@40, push E@50.
    log = [
        (10, 110, True, BR_CALL),
        (20, 120, True, BR_CALL),
        (25, 0, True, BR_RET),
        (30, 130, True, BR_CALL),
        (35, 0, True, BR_RET),
        (36, 0, True, BR_RET),
        (40, 140, True, BR_CALL),
        (50, 150, True, BR_CALL),
    ]

    contents = benchmark.pedantic(
        lambda: reconstruct_ras_contents(log, 8), rounds=100, iterations=100,
    )
    # Forward simulation agrees: only D and E frames survive.
    forward = ReturnAddressStack(PredictorConfig(64, 64, 8))
    for pc, _next, _taken, kind in log:
        if kind == BR_CALL:
            forward.push(pc + 1)
        else:
            forward.pop()
    assert contents == forward.contents_from_top() == [51, 41]

    rows = []
    counter = 0
    for pc, _next, _taken, kind in reversed(log):
        if kind == BR_RET:
            counter += 1
            rows.append([f"pop  @ {pc}", str(counter), "-"])
        elif counter == 0:
            rows.append([f"push @ {pc}", "0", f"RAS <- {pc + 1}"])
        else:
            counter -= 1
            rows.append([f"push @ {pc}", str(counter), "cancelled"])
    text = format_table(
        ["reverse event", "counter", "action"],
        rows,
        title="Figure 4: reverse RAS reconstruction "
              f"(result, top first: {contents})",
    )
    emit("figure4_ras_example", text)


def test_figure4_deep_trace(benchmark):
    """Reconstruction cost over a long random call/return trace."""
    rng = np.random.default_rng(5)
    log = []
    for position in range(50_000):
        if rng.random() < 0.5:
            log.append((position, position + 100, True, BR_CALL))
        else:
            log.append((position, 0, True, BR_RET))

    contents = benchmark.pedantic(
        lambda: reconstruct_ras_contents(log, 8), rounds=3, iterations=1,
    )
    assert len(contents) <= 8
