"""Table 2: the sixteen warm-up configurations under evaluation.

Regenerates the method matrix (names, what each warms, its parameters)
and smoke-times one representative configuration end to end.
"""

from conftest import emit
from repro.harness import format_table
from repro.sampling import SampledSimulator
from repro.warmup import paper_method_suite, make_method
from repro.workloads import build_workload


def test_table2_method_matrix(benchmark, scale):
    workload = build_workload("ammp")

    def one_sampled_run():
        simulator = SampledSimulator(
            workload, scale.regimen(), scale.configs(),
            warmup_prefix=scale.warmup_prefix,
        )
        return simulator.run(make_method("R$BP (20%)"))

    result = benchmark.pedantic(one_sampled_run, rounds=1, iterations=1)
    assert len(result.cluster_ipcs) == scale.num_clusters

    rows = []
    for method in paper_method_suite():
        fraction = getattr(method, "fraction", None)
        rows.append([
            method.name,
            "yes" if method.warms_cache else "no",
            "yes" if method.warms_predictor else "no",
            type(method).__name__,
            f"{fraction:.0%}" if fraction is not None else "-",
        ])
    text = format_table(
        ["name", "warms cache", "warms BP", "class", "fraction"],
        rows,
        title="Table 2: warm-up method experiments",
    )
    emit("table2_methods", text)
    assert len(rows) == 16
