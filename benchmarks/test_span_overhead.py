"""Perf bench: span tracing's cost, and its absence when off.

Two claims are asserted here and recorded into ``BENCH_pr7.json`` at the
repo root for the trajectory gate:

- **Off is free.**  With ``REPRO_SPANS`` unset the sampled run is
  bit-identical to a plain run — same per-cluster IPCs, same estimate,
  zero span records — and the only residual hot-path work is the
  :func:`repro.telemetry.spans_enabled` environment check, which is
  microbenched and bounded here.
- **On is cheap.**  Spans bracket phases, not instructions: the wall
  overhead of a fully traced run is asserted ≤ 5% as the minimum of
  per-pair ratios over alternating off/on repetitions.  Each pair runs
  adjacent in time and shares whatever ambient load the machine has, so
  the quietest pair bounds the intrinsic overhead; scheduler
  interference on a shared runner cannot fail the gate spuriously.

The recorded summary carries the zero-overhead boolean, the measured
overhead ratio, and the (deterministic) export record counts; raw
wall-clock numbers land in the informational ``timing`` block.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import time

from conftest import emit
from repro.harness import format_table
from repro.sampling import SampledSimulator
from repro.telemetry import (
    RECORD_SPAN,
    SPANS_ENV_VAR,
    Telemetry,
    span_tree_shape,
    spans_enabled,
    to_chrome_trace,
)
from repro.warmup import make_method
from repro.workloads import build_workload

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr7.json"
WORKLOADS = ("gcc", "mcf")
METHOD = "R$BP (20%)"
REPS = 5
GATE_CHECK_CALLS = 20_000
OVERHEAD_BOUND = 1.05


def _run(simulator, spans: bool):
    previous = os.environ.get(SPANS_ENV_VAR)
    os.environ[SPANS_ENV_VAR] = "1" if spans else "0"
    try:
        start = time.perf_counter()
        result = simulator.run(make_method(METHOD))
        wall = time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop(SPANS_ENV_VAR, None)
        else:
            os.environ[SPANS_ENV_VAR] = previous
    return result, result.extra["telemetry"], wall


def test_span_overhead(benchmark, scale):
    rows = []
    timing = {}
    identical = True
    span_counts = {}
    for workload_name in WORKLOADS:
        workload = build_workload(workload_name, mem_scale=scale.mem_scale)
        simulator = SampledSimulator(
            workload, scale.regimen(), scale.configs(),
            warmup_prefix=scale.warmup_prefix,
            detail_ramp=scale.detail_ramp,
            telemetry=Telemetry,
        )
        walls_off, walls_on = [], []
        result_off = snapshot_on = result_on = None
        # Alternate off/on so drift (thermal, cache residency) hits both
        # sides of the ratio equally.
        for _ in range(REPS):
            result_off, snapshot_off, wall_off = _run(simulator, False)
            result_on, snapshot_on, wall_on = _run(simulator, True)
            walls_off.append(wall_off)
            walls_on.append(wall_on)
            assert snapshot_off.spans == [], (
                f"{workload_name}: span records emitted with "
                f"{SPANS_ENV_VAR} off"
            )
        if (result_off.cluster_ipcs != result_on.cluster_ipcs
                or result_off.estimate.mean != result_on.estimate.mean):
            identical = False

        spans = [record for record in snapshot_on.spans
                 if record.get("type") == RECORD_SPAN]
        assert spans, f"{workload_name}: spans-on run recorded no spans"
        shape = span_tree_shape(snapshot_on.spans)
        assert shape[0][0] == "run"
        chrome_events = len(to_chrome_trace(snapshot_on.spans)["traceEvents"])
        span_counts[workload_name] = {
            "span_records": len(spans),
            "total_records": len(snapshot_on.spans),
            "chrome_events": chrome_events,
        }

        pair_ratios = [on / off
                       for on, off in zip(walls_on, walls_off)]
        ratio = min(pair_ratios)
        timing[workload_name] = {
            "wall_seconds_off_min": min(walls_off),
            "wall_seconds_on_min": min(walls_on),
            "wall_seconds_off_median": statistics.median(walls_off),
            "wall_seconds_on_median": statistics.median(walls_on),
            "median_pair_ratio": statistics.median(pair_ratios),
            "overhead_ratio_on_vs_off": ratio,
        }
        assert ratio <= OVERHEAD_BOUND, (
            f"{workload_name}: spans-on wall overhead {ratio:.3f}x "
            f"exceeds the {OVERHEAD_BOUND:.2f}x bound"
        )
        rows.append([
            workload_name,
            str(len(spans)),
            str(chrome_events),
            f"{min(walls_off) * 1e3:.1f}ms",
            f"{min(walls_on) * 1e3:.1f}ms",
            f"{ratio:.3f}x",
        ])
    assert identical, "spans-on run diverged from spans-off run"

    # The entire spans-off hot-path cost is this environment check;
    # bound it well under a microsecond apiece.
    os.environ[SPANS_ENV_VAR] = "0"
    try:
        start = time.perf_counter()
        for _ in range(GATE_CHECK_CALLS):
            spans_enabled()
        per_call_us = ((time.perf_counter() - start)
                       / GATE_CHECK_CALLS * 1e6)
    finally:
        os.environ.pop(SPANS_ENV_VAR, None)
    assert per_call_us < 50.0, (
        f"spans_enabled() gate check costs {per_call_us:.2f}us per call"
    )
    timing["gate_check_microseconds"] = per_call_us

    worst_ratio = max(entry["overhead_ratio_on_vs_off"]
                      for entry in timing.values()
                      if isinstance(entry, dict))
    payload = {
        "bench": "span_overhead",
        "scale": scale.name,
        "workloads": list(WORKLOADS),
        # The boolean and record counts are deterministic; the wall
        # ratio is asserted <= OVERHEAD_BOUND above on both the baseline
        # and every future run, which keeps the gate's comparison window
        # narrow even though wall clock is machine-dependent.
        "summary": {
            "spans_off_identical_results": identical,
            "spans_on_wall_overhead_ratio": worst_ratio,
            "span_records_per_run": sum(
                counts["span_records"]
                for counts in span_counts.values()),
            "chrome_events_per_run": sum(
                counts["chrome_events"]
                for counts in span_counts.values()),
        },
        "timing": timing,
        "per_workload": span_counts,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")

    def render():
        return format_table(
            ["workload", "spans", "chrome events", "wall off",
             "wall on", "on/off"],
            rows,
            title=f"Span tracing overhead ({scale.name} tier): "
                  f"gate check {per_call_us:.2f}us/call, "
                  f"off == plain, bound {OVERHEAD_BOUND:.2f}x",
        )

    text = benchmark.pedantic(render, rounds=3, iterations=1)
    emit("span_overhead", text)
