"""Extension: per-workload sampling-regimen design (Table 1 companion).

The paper's Table 1 lists a sampling regimen per workload, chosen so the
sample is trustworthy ("care must be taken to select an appropriate
sampling regimen").  This bench automates that choice: a pilot study per
workload estimates the between-cluster IPC variability, and the standard
sample-size formula yields the cluster count needed for a 3% error bound
at 95% confidence.
"""

from conftest import emit
from repro.harness import format_table
from repro.sampling import recommend_regimen
from repro.workloads import PAPER_WORKLOADS, build_workload


def test_extension_regimen_design(benchmark, scale):
    recommendations = {}

    def design_all():
        for name in PAPER_WORKLOADS:
            workload = build_workload(name, mem_scale=scale.mem_scale)
            recommendations[name] = recommend_regimen(
                workload, scale.total_instructions, scale.cluster_size,
                target_relative_error=0.03,
                pilot_clusters=8,
                configs=scale.configs(),
                warmup_prefix=scale.warmup_prefix,
            )
        return recommendations

    benchmark.pedantic(design_all, rounds=1, iterations=1)

    rows = []
    for name, rec in recommendations.items():
        rows.append([
            name,
            f"{rec.pilot_mean_ipc:.4f}",
            f"{rec.pilot_std_dev:.4f}",
            f"{rec.pilot_std_dev / rec.pilot_mean_ipc:.2f}",
            str(rec.recommended_clusters),
            f"±{rec.predicted_error_bound:.4f}",
        ])
    text = format_table(
        ["workload", "pilot IPC", "cluster std-dev", "CoV",
         "clusters for 3%", "predicted bound"],
        rows,
        title="Table 1 companion: pilot-designed regimens "
              f"(cluster size {scale.cluster_size}, 95% confidence)",
    )
    emit("extension_regimen_design", text)

    # Shape: workloads with higher relative cluster variability need more
    # clusters; the recommendation must track the coefficient of
    # variation ordering at the extremes.
    by_cov = sorted(
        recommendations.values(),
        key=lambda rec: rec.pilot_std_dev / rec.pilot_mean_ipc,
    )
    assert by_cov[0].recommended_clusters <= \
        by_cov[-1].recommended_clusters
    for rec in recommendations.values():
        assert rec.recommended_clusters >= 1
