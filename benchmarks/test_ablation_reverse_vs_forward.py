"""Ablation: reverse-order scan versus forward replay of the log tail.

DESIGN.md §5: the reverse scan is what lets reconstruction stop touching
a set once its final state is known.  A forward replay of the same log
tail applies *every* reference (like fixed-period warm-up from a buffer),
so it performs strictly more cache updates for the same final state
quality.  This bench quantifies the update-count gap.
"""

from conftest import emit
from repro.cache import MemoryHierarchy
from repro.core import ReverseCacheReconstructor, SkipRegionLog
from repro.core.logging import REF_INSTRUCTION, REF_STORE
from repro.harness import format_table
from repro.workloads import build_workload


def _collect_log(workload_name, skip_instructions, scale):
    workload = build_workload(workload_name)
    machine = workload.make_machine()
    machine.run(20_000)  # move past initialisation
    log = SkipRegionLog()
    machine.run(
        skip_instructions,
        mem_hook=log.make_mem_hook(),
        ifetch_hook=log.make_ifetch_hook(),
        ifetch_block_bytes=64,
    )
    return log


def _forward_replay(hierarchy, records):
    applied = 0
    for address, kind in records:
        is_instruction = kind == REF_INSTRUCTION
        hierarchy.warm_access(address, kind == REF_STORE, is_instruction)
        applied += 1
    return applied


def test_ablation_reverse_vs_forward(benchmark, scale):
    fraction = 0.4
    rows = []
    gap = max(20_000, scale.total_instructions // scale.num_clusters)

    for name in ("gcc", "vpr", "mcf"):
        log = _collect_log(name, gap, scale)
        tail = log.memory_tail(fraction)

        reverse_hierarchy = MemoryHierarchy(scale.configs().hierarchy)
        reconstructor = ReverseCacheReconstructor(reverse_hierarchy)
        stats = reconstructor.reconstruct(log, fraction)

        forward_hierarchy = MemoryHierarchy(scale.configs().hierarchy)
        forward_updates_before = forward_hierarchy.total_updates()
        _forward_replay(forward_hierarchy, tail)
        forward_updates = (
            forward_hierarchy.total_updates() - forward_updates_before
        )

        overlap = len(
            reverse_hierarchy.l1d.contents()
            & forward_hierarchy.l1d.contents()
        )
        total = max(1, len(forward_hierarchy.l1d.contents()))
        rows.append([
            name,
            str(len(tail)),
            str(stats.applied),
            str(forward_updates),
            f"{forward_updates / max(1, stats.applied):.1f}x",
            f"{overlap / total * 100:.0f}%",
        ])
        # Reverse applies far fewer updates...
        assert stats.applied < forward_updates / 2, name
        # ...while producing nearly the same final L1D contents.
        assert overlap / total > 0.80, name

    def render():
        return format_table(
            ["workload", "log tail refs", "reverse updates",
             "forward updates", "update ratio", "L1D content overlap"],
            rows,
            title=f"Ablation: reverse scan vs forward replay "
                  f"({fraction:.0%} tail of a {gap}-instruction gap)",
        )

    text = benchmark.pedantic(render, rounds=5, iterations=1)
    emit("ablation_reverse_vs_forward", text)
