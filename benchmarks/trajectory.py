"""Benchmark-trajectory tracker: collect BENCH_*.json, gate regressions.

Every perf-bench PR leaves a ``BENCH_<tag>.json`` record at the repo
root (see ``benchmarks/test_perf_*.py``).  Those records accumulate into
a *trajectory*: the sequence of headline metrics the reproduction has
achieved so far.  This module normalises the current set of BENCH files
into one artifact and compares it against the previous PR's committed
baseline (``benchmarks/TRAJECTORY.json``), failing loudly — exit status
2 with a readable diff — when a tracked metric regresses beyond a
threshold.

Stdlib only, runnable directly (no repro import, no pytest):

    python benchmarks/trajectory.py collect --root . --output traj.json
    python benchmarks/trajectory.py gate --root . \
        --baseline benchmarks/TRAJECTORY.json --threshold 0.15

Metric direction is inferred from the name.  Cost-like markers
(``overhead``, ``seconds``, ``error``, ``microseconds``, ``stale``) mean
lower-is-better and are checked *first*, so ``audit_on_overhead_ratio``
gates as a cost even though it ends in ``_ratio``; otherwise ``_ratio``
/ ``speedup`` / ``agreement`` names gate as higher-is-better, booleans
must not flip true -> false, and anything else is recorded but not
gated.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

SCHEMA = "repro-trajectory-v1"

#: Substrings marking a lower-is-better (cost-like) metric.  Checked
#: before the higher-is-better suffix rules.
LOWER_IS_BETTER_MARKERS = (
    "overhead", "seconds", "error", "microseconds", "stale",
)

#: Name fragments marking a higher-is-better (benefit-like) metric.
HIGHER_IS_BETTER_MARKERS = ("_ratio", "speedup", "agreement", "exact")


def metric_direction(name: str) -> str:
    """'lower', 'higher', or 'none' (recorded but never gated)."""
    lowered = name.lower()
    if any(marker in lowered for marker in LOWER_IS_BETTER_MARKERS):
        return "lower"
    if any(marker in lowered for marker in HIGHER_IS_BETTER_MARKERS):
        return "higher"
    return "none"


def collect(root: str) -> dict:
    """Normalise every ``BENCH_*.json`` under `root` into a trajectory.

    Each file contributes one entry keyed by its ``<tag>`` (the filename
    between ``BENCH_`` and ``.json``), holding the bench name, scale,
    and the scalar metrics of its ``summary`` block.  The payload is
    deterministic — no timestamps — so committing it produces stable
    diffs.
    """
    benches: dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        tag = os.path.basename(path)[len("BENCH_"):-len(".json")]
        with open(path, encoding="utf-8") as stream:
            payload = json.load(stream)
        metrics = {
            name: value
            for name, value in payload.get("summary", {}).items()
            if isinstance(value, (bool, int, float))
        }
        benches[tag] = {
            "bench": payload.get("bench", tag),
            "scale": payload.get("scale"),
            "metrics": metrics,
        }
    return {"schema": SCHEMA, "benches": benches}


def _is_regression(direction: str, baseline, current,
                   threshold: float) -> bool:
    if isinstance(baseline, bool) or isinstance(current, bool):
        # A boolean guarantee (e.g. identical_results) must never flip
        # from true to false; false -> true is an improvement.
        return bool(baseline) and not bool(current)
    if direction == "none":
        return False
    if baseline == 0:
        # No relative scale to speak of: gate on absolute movement.
        delta = current - baseline
        worse = delta if direction == "lower" else -delta
        return worse > threshold
    if direction == "lower":
        return current > baseline * (1.0 + threshold)
    return current < baseline * (1.0 - threshold)


def gate(current: dict, baseline: dict, threshold: float) -> tuple[int, str]:
    """Compare trajectories; return (exit status, readable report).

    Exit status 2 when any tracked metric regresses beyond `threshold`
    (relative, e.g. 0.15 = 15%).  New benches and new metrics pass (the
    trajectory is allowed to grow); benches that vanished are reported
    as warnings but do not fail the gate on their own.
    """
    lines: list[str] = []
    regressions: list[str] = []
    current_benches = current.get("benches", {})
    baseline_benches = baseline.get("benches", {})

    for tag in sorted(set(baseline_benches) - set(current_benches)):
        lines.append(f"warning: bench '{tag}' present in baseline but "
                     f"missing from current run")
    for tag in sorted(set(current_benches) - set(baseline_benches)):
        lines.append(f"new bench '{tag}' (no baseline; not gated)")

    for tag in sorted(set(current_benches) & set(baseline_benches)):
        base_metrics = baseline_benches[tag].get("metrics", {})
        cur_metrics = current_benches[tag].get("metrics", {})
        for name in sorted(set(base_metrics) | set(cur_metrics)):
            if name not in cur_metrics:
                lines.append(f"warning: {tag}.{name} missing from "
                             f"current run")
                continue
            if name not in base_metrics:
                lines.append(f"new metric {tag}.{name} = "
                             f"{cur_metrics[name]} (not gated)")
                continue
            base, cur = base_metrics[name], cur_metrics[name]
            direction = metric_direction(name)
            if _is_regression(direction, base, cur, threshold):
                if isinstance(base, bool):
                    bound = "boolean guarantee, must stay true"
                elif direction == "lower":
                    bound = (f"lower-is-better, max allowed "
                             f"{base * (1.0 + threshold):g}")
                else:
                    bound = (f"higher-is-better, min allowed "
                             f"{base * (1.0 - threshold):g}")
                regressions.append(
                    f"REGRESSION {tag}.{name}: {base!r} -> {cur!r} "
                    f"({bound})"
                )
            else:
                lines.append(f"ok {tag}.{name}: {base!r} -> {cur!r}")

    if regressions:
        report = "\n".join(regressions + lines)
        report += (f"\n\ntrajectory gate FAILED: {len(regressions)} "
                   f"metric(s) regressed beyond "
                   f"{threshold:.0%} of baseline")
        return 2, report
    report = "\n".join(lines)
    report += "\n\ntrajectory gate passed"
    return 0, report


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as stream:
        return json.load(stream)


def _dump(payload: dict, path: str | None) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if path is None:
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="trajectory",
        description="collect BENCH_*.json records and gate regressions",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    collect_parser = subparsers.add_parser(
        "collect", help="normalise BENCH_*.json into a trajectory file",
    )
    collect_parser.add_argument(
        "--root", default=".", help="directory holding BENCH_*.json",
    )
    collect_parser.add_argument(
        "--output", default=None,
        help="write the trajectory here (default: stdout)",
    )

    gate_parser = subparsers.add_parser(
        "gate", help="fail (exit 2) if metrics regressed vs a baseline",
    )
    gate_parser.add_argument(
        "--baseline", required=True,
        help="previous trajectory file (e.g. benchmarks/TRAJECTORY.json)",
    )
    gate_parser.add_argument(
        "--root", default=".",
        help="collect the current trajectory from this directory",
    )
    gate_parser.add_argument(
        "--current", default=None,
        help="gate this pre-collected trajectory file instead of "
             "collecting from --root",
    )
    gate_parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="allowed relative slack before a metric counts as "
             "regressed (default: 0.15)",
    )
    gate_parser.add_argument(
        "--output", default=None,
        help="also write the current trajectory here",
    )

    args = parser.parse_args(argv)
    if args.command == "collect":
        _dump(collect(args.root), args.output)
        return 0

    current = (_load(args.current) if args.current
               else collect(args.root))
    if args.output:
        _dump(current, args.output)
    status, report = gate(current, _load(args.baseline), args.threshold)
    print(report)
    return status


if __name__ == "__main__":
    sys.exit(main())
