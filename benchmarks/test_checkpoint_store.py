"""Perf bench: checkpoint-store warm sweeps vs cold Phase A re-scans.

Records ``BENCH_pr10.json`` at the repo root for the trajectory gate.
The store's economy claim, made continuously observable:

- **Warm sweeps are fast.**  A core-parameter sweep (three
  :class:`~repro.timing.CoreConfig` variants) against a populated
  checkpoint store materialises every run's Phase A from disk, so the
  sweep's wall time must be at least ``SPEEDUP_FLOOR``x faster than the
  identical sweep running its cold scans live (Phase A dominates — the
  cold scan walks the whole population while Phase B touches only the
  sampled clusters).
- **Warm equals cold, bit for bit.**  For every swept config the warm
  run's per-cluster IPCs and complete WarmupCost ledger are identical
  to the cold run's: the stored shards replay their cold-scan cost
  deltas, so a store hit is observationally equivalent to the scan it
  replaced.
- **Streaming equals barrier.**  The pipeline's streaming fold
  (completions folded in arrival order through a pending-heap) produces
  results bit-identical to a barrier fold (an executor that never
  streams, forcing the return-value fallback path).

The speedup is gated (higher-is-better); both equalities are never-flip
booleans.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time

from conftest import emit
from repro.core import ReverseStateReconstruction
from repro.harness import format_table
from repro.harness.executor import (
    Executor,
    register_executor,
    unregister_executor,
)
from repro.sampling import SampledSimulator, SamplingRegimen
from repro.store import STORE_ENV_VAR, global_store_stats
from repro.workloads import build_workload

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_pr10.json"
WORKLOAD = "gcc"
CLUSTER_JOBS = 2
#: Hard floor on the warm-sweep wall speedup.
SPEEDUP_FLOOR = 2.0
#: Sampling geometry over the scale tier's population: 16 clusters of
#: 300 instructions is a ~1% detailed fraction, the SMARTS-like regime
#: the store is built for (the bench tier's default 20x1200 samples 5%,
#: which understates how much of a real sweep is Phase A).
NUM_CLUSTERS = 16
CLUSTER_SIZE = 300
REGIMEN_SEED = 17


class _BarrierExecutor(Executor):
    """Backend that never streams: the fold runs entirely from the
    returned list (the barrier-equivalent path)."""

    name = "bench-barrier"
    description = "bench backend without a streaming hook"

    def map(self, worker, tasks, *, on_result=None):
        del on_result
        return [worker(task) for task in tasks]


def _core_sweep(base):
    """Three core variants; none touches Phase A's inputs."""
    return [
        base,
        dataclasses.replace(base, rob_entries=base.rob_entries * 2,
                            issue_queue_entries=base.issue_queue_entries * 2),
        dataclasses.replace(base, issue_width=max(1, base.issue_width - 1),
                            mispredict_penalty=base.mispredict_penalty + 4),
    ]


def _timed_run(workload, scale, regimen, configs):
    simulator = SampledSimulator(
        workload, regimen, configs,
        warmup_prefix=scale.warmup_prefix,
        detail_ramp=scale.detail_ramp,
        cluster_jobs=CLUSTER_JOBS,
    )
    start = time.perf_counter()
    result = simulator.run(ReverseStateReconstruction(fraction=1.0))
    return result, time.perf_counter() - start


def test_checkpoint_store(benchmark, scale, tmp_path, monkeypatch):
    workload = build_workload(WORKLOAD, mem_scale=scale.mem_scale)
    regimen = SamplingRegimen(
        total_instructions=scale.regimen().total_instructions,
        num_clusters=NUM_CLUSTERS, cluster_size=CLUSTER_SIZE,
        seed=REGIMEN_SEED,
    )
    base_configs = scale.configs()
    sweep = [dataclasses.replace(base_configs, core=core)
             for core in _core_sweep(base_configs.core)]
    # Threads keep Phase B genuinely parallel without paying a process
    # pool's spawn latency on both sides of the comparison.
    monkeypatch.setenv("REPRO_EXECUTOR", "threads")

    # -- cold sweep: no store, every run pays its own Phase A scan ------
    monkeypatch.delenv(STORE_ENV_VAR, raising=False)
    cold = [_timed_run(workload, scale, regimen, configs)
            for configs in sweep]
    cold_seconds = [seconds for _, seconds in cold]

    # -- populate, then the warm sweep off one store directory ----------
    monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "store"))
    populate_result, populate_seconds = _timed_run(workload, scale,
                                                   regimen, sweep[0])
    assert populate_result.extra["checkpoint_store"] == "miss"

    stats_before = global_store_stats().as_dict()
    warm = [_timed_run(workload, scale, regimen, configs)
            for configs in sweep]
    warm_seconds = [seconds for _, seconds in warm]
    store_hits = (global_store_stats().as_dict()["hits"]
                  - stats_before["hits"])

    every_run_hit = all(result.extra["checkpoint_store"] == "hit"
                        for result, _ in warm)
    warm_cold_bit_identical = every_run_hit and all(
        warm_result.cluster_ipcs == cold_result.cluster_ipcs
        and warm_result.cost.as_dict() == cold_result.cost.as_dict()
        for (warm_result, _), (cold_result, _) in zip(warm, cold)
    )
    assert warm_cold_bit_identical, \
        "a warm-store run diverged from its cold twin"

    speedup = sum(cold_seconds) / sum(warm_seconds)
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm sweep is only {speedup:.2f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x)"
    )

    # -- streaming fold == barrier fold on a warm hit -------------------
    register_executor(_BarrierExecutor.name, _BarrierExecutor,
                      replace=True)
    try:
        monkeypatch.setenv("REPRO_EXECUTOR", _BarrierExecutor.name)
        barrier_result, _ = _timed_run(workload, scale, regimen, sweep[0])
    finally:
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")
        unregister_executor(_BarrierExecutor.name)
    streaming_result = warm[0][0]
    streaming_fold_bit_identical = (
        barrier_result.extra["checkpoint_store"] == "hit"
        and barrier_result.cluster_ipcs == streaming_result.cluster_ipcs
        and barrier_result.cost.as_dict() == streaming_result.cost.as_dict()
    )
    assert streaming_fold_bit_identical, \
        "barrier-fold results diverged from the streaming fold"

    payload = {
        "bench": "checkpoint_store",
        "scale": scale.name,
        "workload": WORKLOAD,
        "core_configs": len(sweep),
        "cluster_jobs": CLUSTER_JOBS,
        "regimen": {
            "total_instructions": regimen.total_instructions,
            "num_clusters": NUM_CLUSTERS,
            "cluster_size": CLUSTER_SIZE,
        },
        "summary": {
            "warm_store_wall_speedup": speedup,
            "warm_cold_bit_identical": warm_cold_bit_identical,
            "streaming_fold_bit_identical": streaming_fold_bit_identical,
        },
        "timing": {
            "cold_sweep_seconds": cold_seconds,
            "populate_seconds": populate_seconds,
            "warm_sweep_seconds": warm_seconds,
        },
        "store": {
            "hits": store_hits,
            "entries": 1,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")

    rows = [
        ["cold sweep (3 configs, live Phase A)",
         f"{sum(cold_seconds):.2f}s", "reference results"],
        ["warm sweep (same 3, store hits)",
         f"{sum(warm_seconds):.2f}s",
         f"{speedup:.2f}x, bit-identical to cold"],
        ["populate (cold + capture)",
         f"{populate_seconds:.2f}s", "one store entry"],
        ["barrier fold on a warm hit", "-",
         "bit-identical to streaming"],
    ]

    def render():
        return format_table(
            ["path", "wall", "guarantee"], rows,
            title=f"Checkpoint store ({scale.name} tier): "
                  f"{len(sweep)}-config core sweep, "
                  f"cluster_jobs={CLUSTER_JOBS}",
        )

    text = benchmark.pedantic(render, rounds=3, iterations=1)
    emit("checkpoint_store", text)
