"""Extension: live-points checkpoint library (paper reference [18]).

Quantifies the generation-once / replay-many trade-off: the library
build pays one warmed functional pass; each subsequent core-parameter
replay costs only the detailed clusters.
"""

from conftest import emit
from repro.harness import format_table
from repro.livepoints import LivePointLibrary
from repro.sampling import SampledSimulator
from repro.timing import CoreConfig
from repro.warmup import SmartsWarmup
from repro.workloads import build_workload


def test_extension_livepoints(benchmark, scale):
    workload = build_workload("perl")
    regimen = scale.regimen()

    library = LivePointLibrary.generate(
        workload, regimen, scale.configs(),
        warmup_prefix=scale.warmup_prefix,
    )

    replay = benchmark.pedantic(library.replay, rounds=3, iterations=1)

    # The replay must reproduce a direct SMARTS-warmed sampled run
    # exactly (same warmed state, same clusters).
    direct = SampledSimulator(
        workload, regimen, scale.configs(),
        warmup_prefix=scale.warmup_prefix,
    ).run(SmartsWarmup())
    max_delta = max(
        abs(a - b) for a, b in zip(replay.cluster_ipcs, direct.cluster_ipcs)
    )
    assert max_delta < 1e-12

    # Sweep three cores from the same library.
    sweep_rows = []
    for label, core in (
        ("baseline", CoreConfig()),
        ("1-issue", CoreConfig(issue_width=1)),
        ("ROB 16", CoreConfig(rob_entries=16, issue_queue_entries=8)),
    ):
        result = library.replay(core)
        sweep_rows.append([
            label, f"{result.estimate.mean:.4f}",
            f"{result.wall_seconds:.2f}s",
        ])

    text = format_table(
        ["core", "IPC", "replay time"],
        sweep_rows,
        title=(
            "Extension: live-points on perl — library built in "
            f"{library.generation_seconds:.1f}s "
            f"({len(library)} points), replays below"
        ),
    )
    emit("extension_livepoints", text)

    # Replays skip all functional fast-forwarding.
    assert replay.wall_seconds < library.generation_seconds
    assert replay.wall_seconds < direct.wall_seconds