"""Ablation: on-demand versus eager branch-predictor reconstruction.

Paper §3.2 reconstructs PHT entries lazily as the next cluster probes
them.  The eager alternative drains the whole log at the cluster
boundary.  Both produce the same estimates for probed entries; on-demand
should finalise far fewer entries (only the ones the cluster touches,
plus entries met on the walk), writing fewer counters overall.
"""

from conftest import emit
from repro.core import ReverseStateReconstruction
from repro.harness import format_table
from repro.sampling import SampledSimulator
from repro.workloads import build_workload


def test_ablation_ondemand_vs_eager(benchmark, scale):
    rows = []
    results = {}
    for name in ("gcc", "parser"):
        workload = build_workload(name)
        for label, on_demand in (("on-demand", True), ("eager", False)):
            simulator = SampledSimulator(
                workload, scale.regimen(), scale.configs(),
                warmup_prefix=scale.warmup_prefix,
            )
            method = ReverseStateReconstruction(
                fraction=0.4, on_demand=on_demand,
            )
            run = simulator.run(method)
            results[(name, label)] = run
            rows.append([
                name,
                label,
                f"{run.estimate.mean:.4f}",
                f"{run.cost.predictor_updates:,}",
                f"{run.wall_seconds:.2f}s",
            ])

    def render():
        return format_table(
            ["workload", "mode", "IPC estimate", "predictor updates",
             "wall time"],
            rows,
            title="Ablation: on-demand vs eager PHT reconstruction "
                  "(R$BP 40%)",
        )

    text = benchmark.pedantic(render, rounds=5, iterations=1)
    emit("ablation_ondemand_vs_eager", text)

    for name in ("gcc", "parser"):
        lazy = results[(name, "on-demand")]
        eager = results[(name, "eager")]
        # Same accuracy ballpark: both reconstruct the probed entries the
        # same way.
        assert abs(lazy.estimate.mean - eager.estimate.mean) \
            < 0.1 * eager.estimate.mean
        # Laziness writes no more counters than draining everything.
        assert lazy.cost.predictor_updates <= eager.cost.predictor_updates
