"""Perf bench: the two-phase cluster-sharded pipeline vs the serial walk.

Records ``BENCH_pr5.json`` at the repo root for the trajectory gate.
Three serial-equivalence guarantees are asserted and recorded as
booleans — they must never flip:

- **Costs are identical.**  The cold scan visits the same positions and
  fills the same gap logs as the serial walk, so the entire WarmupCost
  ledger (functional instructions, log records, hot instructions,
  reconstruction updates) matches exactly.
- **Worker count is irrelevant.**  ``cluster_jobs=2`` and
  ``cluster_jobs=4`` execute the identical two-phase schedule, so their
  results are bit-identical (this is what lets the result-cache key
  ignore the worker count).
- **Raw == compacted.**  Both skip-log representations hand shards the
  same reconstruction sources, so sharded runs are bit-identical across
  them.

What shards legitimately change is the stale microarchitectural state a
serial run carries into each cluster underneath the reconstruction; the
residual per-cluster IPC bias is measured directly (serial vs sharded)
and attributed by the accuracy audit riding inside the shard workers
(``cold_start_error`` per cluster).  Both land in the gated summary, so
the trajectory tracker catches any growth in shard bias.  Wall-clock
numbers (including the shard speedup) are machine-dependent and live in
the informational ``timing`` block, outside the gate.
"""

from __future__ import annotations

import json
import os
import pathlib

from conftest import emit
from repro.core import ReverseStateReconstruction
from repro.harness import audit_summary, format_table
from repro.sampling import SampledSimulator
from repro.telemetry import AUDIT_ENV_VAR, COLLECT_ENV_VAR, Telemetry
from repro.workloads import build_workload

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr5.json"
WORKLOADS = ("gcc", "mcf")


def _simulator(workload, scale, cluster_jobs=None):
    return SampledSimulator(
        workload, scale.regimen(), scale.configs(),
        warmup_prefix=scale.warmup_prefix,
        detail_ramp=scale.detail_ramp,
        telemetry=Telemetry,
        cluster_jobs=cluster_jobs,
    )


def _run(simulator, audit=False, **method_kwargs):
    """One RSR run with REPRO_AUDIT (and, for shard workers, telemetry
    collection) forced on or off around it."""
    previous = {
        name: os.environ.get(name)
        for name in (AUDIT_ENV_VAR, COLLECT_ENV_VAR)
    }
    os.environ[AUDIT_ENV_VAR] = "1" if audit else "0"
    if audit:
        # Shard workers resolve telemetry from the environment; the
        # audit records must flow through them back to the parent.
        os.environ[COLLECT_ENV_VAR] = "1"
    try:
        return simulator.run(
            ReverseStateReconstruction(fraction=1.0, **method_kwargs))
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def test_cluster_shard(benchmark, scale):
    rows = []
    per_workload = []
    timing = {}
    equivalent_costs = True
    worker_invariant = True
    raw_equals_compacted = True
    ipc_biases: list[float] = []
    audit_errors: list[float] = []

    for workload_name in WORKLOADS:
        workload = build_workload(workload_name, mem_scale=scale.mem_scale)
        serial = _run(_simulator(workload, scale))
        sharded = _run(_simulator(workload, scale, cluster_jobs=2),
                       audit=True)
        wide = _run(_simulator(workload, scale, cluster_jobs=4))
        compacted = _run(_simulator(workload, scale, cluster_jobs=2),
                         source="compacted")

        if sharded.cost.as_dict() != serial.cost.as_dict():
            equivalent_costs = False
        if (wide.cluster_ipcs != sharded.cluster_ipcs
                or wide.cost.as_dict() != sharded.cost.as_dict()):
            worker_invariant = False
        if compacted.cluster_ipcs != sharded.cluster_ipcs:
            raw_equals_compacted = False

        biases = [abs(shard_ipc - serial_ipc)
                  for serial_ipc, shard_ipc in zip(serial.cluster_ipcs,
                                                   sharded.cluster_ipcs)]
        ipc_biases.extend(biases)
        stats = audit_summary(sharded.extra["telemetry"])[0]
        audit_errors.append(stats["mean_abs_cold_start_error"])
        # Speedup is measured on the un-audited wide run: the audited
        # one pays for divergence probes the serial run does not.
        speedup = (serial.wall_seconds / wide.wall_seconds
                   if wide.wall_seconds else float("inf"))
        timing[workload_name] = {
            "wall_seconds_serial": serial.wall_seconds,
            "wall_seconds_sharded": wide.wall_seconds,
            "wall_seconds_sharded_audited": sharded.wall_seconds,
            "shard_speedup": speedup,
        }
        per_workload.append({
            "workload": workload_name,
            "mean_abs_ipc_bias": sum(biases) / len(biases),
            "max_abs_ipc_bias": max(biases),
            **stats,
        })
        rows.append([
            workload_name,
            f"{serial.estimate.mean:.4f}",
            f"{sharded.estimate.mean:.4f}",
            f"{max(biases):.4f}",
            f"{stats['cold_start_bias']:+.4f}",
            "yes" if sharded.cost.as_dict() == serial.cost.as_dict()
            else "NO",
            f"{speedup:.2f}x",
        ])

    assert equivalent_costs, "sharded cost ledger diverged from serial"
    assert worker_invariant, "results depend on the shard worker count"
    assert raw_equals_compacted, \
        "sharded raw and compacted sources diverged"

    payload = {
        "bench": "cluster_shard",
        "scale": scale.name,
        "workloads": list(WORKLOADS),
        # Deterministic equivalence guarantees and bias measurements
        # only: safe to gate tightly.
        "summary": {
            "serial_equivalent_costs": equivalent_costs,
            "worker_invariant_results": worker_invariant,
            "raw_equals_compacted_sharded": raw_equals_compacted,
            "mean_abs_shard_ipc_error":
                sum(ipc_biases) / len(ipc_biases),
            "max_abs_shard_ipc_error": max(ipc_biases),
            "mean_abs_shard_cold_start_error":
                sum(audit_errors) / len(audit_errors),
        },
        # Wall-clock numbers (including the shard speedup) are
        # machine-dependent: informational only, deliberately outside
        # "summary" so the trajectory gate ignores them.
        "timing": timing,
        "per_workload": per_workload,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")

    def render():
        return format_table(
            ["workload", "serial ipc", "shard ipc", "max |bias|",
             "audit cold bias", "costs equal", "speedup"],
            rows,
            title=f"Cluster sharding ({scale.name} tier): "
                  f"2 vs 4 workers bit-identical, raw == compacted",
        )

    text = benchmark.pedantic(render, rounds=3, iterations=1)
    emit("cluster_shard", text)
