"""Shared infrastructure for the figure-regeneration benches.

Every bench regenerates one of the paper's tables or figures.  The
expensive shared artifact — the full Table 2 grid of 16 warm-up methods
by 9 workloads — is computed once per pytest session (via the harness's
process-level cache) and sliced by the individual figure benches.  Each
bench additionally times one representative simulation through
pytest-benchmark so the reported numbers reflect real per-run cost.

Outputs are written to ``benchmarks/results/*.txt`` so EXPERIMENTS.md can
reference them.  Scale is controlled by ``REPRO_EXPERIMENT_SCALE``
(default: the ``bench`` tier).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness import scale_from_env
from repro.harness.experiment import full_matrix

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale():
    """The experiment tier used by all benches in this session."""
    return scale_from_env(default=os.environ.get("REPRO_BENCH_TIER", "bench"))


def get_full_matrix():
    """The shared 16-method x 9-workload grid (computed once)."""
    return full_matrix(bench_scale().name)


def save_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit(name: str, text: str) -> None:
    """Print a rendered figure and save it for EXPERIMENTS.md."""
    print(f"\n{text}")
    save_result(name, text)


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def matrix():
    return get_full_matrix()
