"""Shared infrastructure for the figure-regeneration benches.

Every bench regenerates one of the paper's tables or figures.  The
expensive shared artifact — the full Table 2 grid of 16 warm-up methods
by 9 workloads — is computed once per pytest session (via the harness's
process-level cache) and sliced by the individual figure benches.  Each
bench additionally times one representative simulation through
pytest-benchmark so the reported numbers reflect real per-run cost.

Outputs are written to ``benchmarks/results/*.txt`` so EXPERIMENTS.md can
reference them.  Scale is controlled by ``REPRO_EXPERIMENT_SCALE``
(default: the ``bench`` tier).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness import execute_matrix, resolve_cache, scale_from_env
from repro.warmup import paper_method_suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Per-session grid memo (scale name -> matrix), mirroring the old
#: process-level ``full_matrix`` cache but routed through the parallel
#: engine so benches can opt into workers and the on-disk result cache.
_MATRICES: dict = {}


def bench_scale():
    """The experiment tier used by all benches in this session."""
    return scale_from_env(default=os.environ.get("REPRO_BENCH_TIER", "bench"))


def get_full_matrix():
    """The shared 16-method x 9-workload grid (computed once per session).

    ``REPRO_MATRIX_JOBS`` sets the worker count (default 1: serial,
    identical to the historical path); ``REPRO_RESULT_CACHE`` opts into
    the on-disk result cache, making warm bench re-runs near-instant.
    """
    scale = bench_scale()
    if scale.name not in _MATRICES:
        jobs = int(os.environ.get("REPRO_MATRIX_JOBS", "1"))
        _MATRICES[scale.name] = execute_matrix(
            paper_method_suite,
            scale=scale,
            jobs=jobs,
            cache=resolve_cache(),
        )
    return _MATRICES[scale.name]


def save_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit(name: str, text: str) -> None:
    """Print a rendered figure and save it for EXPERIMENTS.md."""
    print(f"\n{text}")
    save_result(name, text)


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def matrix():
    return get_full_matrix()
