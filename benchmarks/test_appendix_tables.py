"""Appendix: full relative-error and simulation-cost tables.

Regenerates the paper's appendix grids — relative error and simulation
cost for all sixteen Table 2 configurations on all nine workloads — plus
estimated-IPC and wall-time grids.
"""

from conftest import emit
from repro.harness import average_over_workloads, format_per_workload
from repro.warmup import paper_method_names


def test_appendix_relative_error(benchmark, matrix):
    names = paper_method_names()

    def render():
        return format_per_workload(
            matrix, names, value="error",
            title="Appendix: relative error",
        )

    text = benchmark.pedantic(render, rounds=5, iterations=1)
    emit("appendix_relative_error", text)

    # Global shape: the best full-warm methods beat no warm-up by a wide
    # margin on average.
    none_error, _w, _t = average_over_workloads(matrix, "None")
    smarts_error, _w, _t = average_over_workloads(matrix, "S$BP")
    assert smarts_error < none_error / 2


def test_appendix_time_tables(benchmark, matrix):
    names = paper_method_names()

    def render():
        work = format_per_workload(
            matrix, names, value="work",
            title="Appendix: simulation work units",
        )
        wall = format_per_workload(
            matrix, names, value="wall",
            title="Appendix: wall-clock seconds (this host)",
        )
        ipc = format_per_workload(
            matrix, names, value="ipc",
            title="Appendix: estimated IPC",
        )
        return "\n\n".join([work, wall, ipc])

    text = benchmark.pedantic(render, rounds=3, iterations=1)
    emit("appendix_time_tables", text)

    # Cost ordering mirrors the paper's time ordering: None cheapest,
    # SMARTS-with-both most expensive among the Table 2 set.
    averages = {
        name: average_over_workloads(matrix, name)[1] for name in names
    }
    assert min(averages, key=averages.get) == "None"
    assert averages["S$BP"] == max(averages.values())
