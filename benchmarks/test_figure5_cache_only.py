"""Figure 5: cache warm-up only.

Relative error and simulation cost for the reverse cache reconstruction
at 20/40/80/100% of the logged stream versus SMARTS cache warming (S$).
Expected shape: R$ accuracy approaches S$ as the fraction grows, at a
fraction of the cache updates; diminishing returns beyond the point where
the log tail covers the cache capacity.
"""

from conftest import emit
from repro.harness import (
    average_over_workloads,
    format_method_summary,
    format_per_workload,
    format_speedups,
)
from repro.sampling import SampledSimulator
from repro.warmup import make_method
from repro.workloads import build_workload

METHODS = ["R$ (20%)", "R$ (40%)", "R$ (80%)", "R$ (100%)", "S$"]


def test_figure5_cache_only(benchmark, scale, matrix):
    def representative_run():
        simulator = SampledSimulator(
            build_workload("vpr"), scale.regimen(), scale.configs(),
            warmup_prefix=scale.warmup_prefix,
        )
        return simulator.run(make_method("R$ (20%)"))

    benchmark.pedantic(representative_run, rounds=1, iterations=1)

    summary = format_method_summary(
        matrix, METHODS, "Figure 5: cache warm-up only (averages)",
    )
    grid = format_per_workload(
        matrix, METHODS, value="error",
        title="Figure 5: relative error per workload",
    )
    speedups = format_speedups(
        matrix, "R$ (20%)", baseline="S$",
        title="Figure 5: R$ (20%) speedup over S$ (cache warm-up only)",
    )
    emit("figure5_cache_only", "\n\n".join([summary, grid, speedups]))

    # Shape assertions.
    smarts_error, smarts_work, _ = average_over_workloads(matrix, "S$")
    r100_error, r100_work, _ = average_over_workloads(matrix, "R$ (100%)")
    r20_error, r20_work, _ = average_over_workloads(matrix, "R$ (20%)")

    # Full-log reverse reconstruction matches SMARTS cache accuracy.
    assert abs(r100_error - smarts_error) < 0.05
    # Every reverse variant costs less than SMARTS on the work metric.
    for name in ("R$ (20%)", "R$ (40%)", "R$ (80%)", "R$ (100%)"):
        _error, work, _wall = average_over_workloads(matrix, name)
        assert work < smarts_work, name
    # The update savings are dramatic (paper: most of the skip region is
    # ineffectual).
    smarts_updates = sum(
        e.outcomes["S$"].run.cost.cache_updates for e in matrix.values()
    )
    r20_updates = sum(
        e.outcomes["R$ (20%)"].run.cost.cache_updates
        for e in matrix.values()
    )
    assert r20_updates < smarts_updates / 5
