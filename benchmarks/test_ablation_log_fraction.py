"""Ablation: sweep of the reconstruction log fraction.

A finer-grained version of the 20/40/80/100% sweep in Figures 5-8,
run on one workload, quantifying the accuracy/cost trade-off curve and
the diminishing returns the paper observes beyond the point where the
log tail covers the cache capacity.
"""

from conftest import emit
from repro.core import ReverseStateReconstruction
from repro.harness import format_table, true_run_for
from repro.sampling import SampledSimulator
from repro.workloads import build_workload

FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_ablation_log_fraction(benchmark, scale):
    name = "twolf"
    workload = build_workload(name)
    true_ipc = true_run_for(name, scale).ipc
    simulator = SampledSimulator(
        workload, scale.regimen(), scale.configs(),
        warmup_prefix=scale.warmup_prefix,
    )

    def sweep():
        outcomes = []
        for fraction in FRACTIONS:
            run = simulator.run(ReverseStateReconstruction(fraction))
            outcomes.append((fraction, run))
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for fraction, run in outcomes:
        rows.append([
            f"{fraction:.0%}",
            f"{run.estimate.mean:.4f}",
            f"{run.relative_error(true_ipc) * 100:.2f}%",
            f"{run.cost.cache_updates:,}",
            f"{run.cost.work_units():,.0f}",
        ])
    text = format_table(
        ["fraction", "IPC estimate", "rel. error", "cache updates", "work"],
        rows,
        title=f"Ablation: reconstruction fraction sweep on {name} "
              f"(true IPC {true_ipc:.4f})",
    )
    emit("ablation_log_fraction", text)

    # Cache updates and work must be non-decreasing in the fraction.
    updates = [run.cost.cache_updates for _f, run in outcomes]
    assert updates == sorted(updates)
    # Accuracy at the full log beats the smallest fraction.
    first_error = outcomes[0][1].relative_error(true_ipc)
    last_error = outcomes[-1][1].relative_error(true_ipc)
    assert last_error <= first_error + 0.02
