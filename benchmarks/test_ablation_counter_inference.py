"""Ablation: counter inference versus stale counters.

Isolates the contribution of the Figure 3 counter-inference table: run
RBP (branch-predictor-only reverse reconstruction) with inference enabled
and disabled (GHR/BTB/RAS still repaired).  Inference should close part
of the gap to SMARTS BP warming on branch-heavy workloads.
"""

from conftest import emit
from repro.core import ReverseStateReconstruction
from repro.harness import format_table, true_run_for
from repro.sampling import SampledSimulator
from repro.warmup import SmartsWarmup
from repro.workloads import build_workload


def test_ablation_counter_inference(benchmark, scale):
    rows = []
    gaps = {}
    for name in ("gcc", "perl"):
        workload = build_workload(name)
        true_run_for(name, scale)  # warm the shared baseline cache
        simulator = SampledSimulator(
            workload, scale.regimen(), scale.configs(),
            warmup_prefix=scale.warmup_prefix,
        )
        reference = simulator.run(
            SmartsWarmup(warm_cache=False, warm_predictor=True)
        )
        errors = {}
        for label, infer in (("with inference", True),
                             ("stale counters", False)):
            method = ReverseStateReconstruction(
                fraction=1.0, warm_cache=False, warm_predictor=True,
                infer_counters=infer,
            )
            run = simulator.run(method)
            errors[label] = abs(run.estimate.mean - reference.estimate.mean)
            rows.append([
                name, label,
                f"{run.estimate.mean:.4f}",
                f"{abs(run.estimate.mean - reference.estimate.mean):.4f}",
                f"{run.cost.predictor_updates:,}",
            ])
        gaps[name] = errors
        rows.append([
            name, "SBP reference", f"{reference.estimate.mean:.4f}",
            "-", f"{reference.cost.predictor_updates:,}",
        ])

    def render():
        return format_table(
            ["workload", "mode", "IPC estimate", "|delta| vs SBP",
             "predictor updates"],
            rows,
            title="Ablation: counter inference vs stale counters (RBP)",
        )

    text = benchmark.pedantic(render, rounds=5, iterations=1)
    emit("ablation_counter_inference", text)

    # Inference tracks the SMARTS-warmed predictor at least as closely as
    # leaving counters stale on the majority of tested workloads.
    better = sum(
        gaps[name]["with inference"] <= gaps[name]["stale counters"] + 0.01
        for name in gaps
    )
    assert better >= 1
