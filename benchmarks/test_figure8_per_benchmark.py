"""Figure 8: Reverse State Reconstruction vs SMARTS, per benchmark.

The per-workload breakdown of the headline comparison: relative error of
R$BP at every fraction against S$BP for each of the nine benchmarks, and
the per-benchmark speedup ratios (paper: max 2.45, average 1.64 on wall
time; we report both the deterministic work metric and wall time).
"""

from conftest import emit
from repro.harness import format_per_workload, format_speedups
from repro.sampling import SampledSimulator
from repro.warmup import make_method
from repro.workloads import build_workload

METHODS = ["R$BP (20%)", "R$BP (40%)", "R$BP (80%)", "R$BP (100%)", "S$BP"]


def test_figure8_per_benchmark(benchmark, scale, matrix):
    def representative_run():
        simulator = SampledSimulator(
            build_workload("mcf"), scale.regimen(), scale.configs(),
            warmup_prefix=scale.warmup_prefix,
        )
        return simulator.run(make_method("S$BP"))

    benchmark.pedantic(representative_run, rounds=1, iterations=1)

    error_grid = format_per_workload(
        matrix, METHODS, value="error",
        title="Figure 8: relative error by benchmark",
    )
    work_grid = format_per_workload(
        matrix, METHODS, value="work",
        title="Figure 8: simulation work units by benchmark",
    )
    speedups = format_speedups(
        matrix, "R$BP (20%)",
        title="Figure 8: per-benchmark speedup of R$BP (20%) over S$BP",
    )
    emit("figure8_per_benchmark",
         "\n\n".join([error_grid, work_grid, speedups]))

    # Per-benchmark shape: every workload runs cheaper under RSR at 20%.
    for name, experiment in matrix.items():
        assert experiment.speedup("R$BP (20%)") > 1.0, name

    # Work cost rises with the reconstruction fraction on every workload.
    for name, experiment in matrix.items():
        w20 = experiment.outcomes["R$BP (20%)"].work_units
        w100 = experiment.outcomes["R$BP (100%)"].work_units
        assert w20 <= w100, name

    # mcf's sweeping working set has the least redundancy in its skip
    # log: the fraction of logged references that actually change cache
    # state during reconstruction is the highest of all workloads (the
    # mechanism behind the paper's observation that mcf benefits least —
    # in their wall-clock accounting the extra applied updates and
    # buffering erase the win; our logging is relatively cheaper, so the
    # speedup survives, a documented implementation difference).
    def applied_fraction(experiment):
        cost = experiment.outcomes["R$BP (20%)"].run.cost
        return cost.cache_updates / max(1, cost.log_records)

    fractions = {
        name: applied_fraction(experiment)
        for name, experiment in matrix.items()
    }
    assert fractions["mcf"] == max(fractions.values())
