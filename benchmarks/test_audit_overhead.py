"""Perf bench: the accuracy audit's cost, and its absence when off.

Two claims are asserted here and recorded into ``BENCH_pr4.json`` at the
repo root for the trajectory gate:

- **Off is free.**  With ``REPRO_AUDIT`` unset the sampled run is
  bit-identical to a plain run — same per-cluster IPCs, same cost
  breakdown, zero audit records — and the only residual hot-path work is
  the :func:`repro.telemetry.audit_enabled` environment check, which is
  microbenched and bounded here.
- **On is invariant.**  Turning the audit on perturbs nothing: cluster
  IPCs and the warm-up cost accounting match the audit-off run exactly
  (probes read state; they never mutate it).

The recorded summary carries only deterministic accuracy metrics (state
agreements, error attribution) so the trajectory gate tracks
reconstruction quality across PRs without timing noise; wall-clock
numbers land in a separate informational ``timing`` block.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import emit
from repro.core import ReverseStateReconstruction
from repro.harness import audit_summary, format_table
from repro.sampling import SampledSimulator
from repro.telemetry import AUDIT_ENV_VAR, RECORD_AUDIT, Telemetry, audit_enabled
from repro.workloads import build_workload

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr4.json"
WORKLOADS = ("gcc", "mcf")
GATE_CHECK_CALLS = 20_000


def _run(simulator, audit: bool):
    previous = os.environ.get(AUDIT_ENV_VAR)
    os.environ[AUDIT_ENV_VAR] = "1" if audit else "0"
    try:
        result = simulator.run(ReverseStateReconstruction(fraction=1.0))
    finally:
        if previous is None:
            os.environ.pop(AUDIT_ENV_VAR, None)
        else:
            os.environ[AUDIT_ENV_VAR] = previous
    return result


def _audit_records(result):
    snapshot = result.extra["telemetry"]
    return [record for record in snapshot.trace_records
            if record.get("type") == RECORD_AUDIT]


def test_audit_overhead(benchmark, scale):
    rows = []
    summaries = []
    timing = {}
    invariant = True
    for workload_name in WORKLOADS:
        workload = build_workload(workload_name, mem_scale=scale.mem_scale)
        simulator = SampledSimulator(
            workload, scale.regimen(), scale.configs(),
            warmup_prefix=scale.warmup_prefix,
            detail_ramp=scale.detail_ramp,
            telemetry=Telemetry,
        )
        off = _run(simulator, audit=False)
        on = _run(simulator, audit=True)

        # Off is free: no audit residue in the run at all.
        assert not _audit_records(off), (
            f"{workload_name}: audit records emitted with REPRO_AUDIT off"
        )
        assert "audit.clusters_probed" not in \
            off.extra["telemetry"].counters

        # On is invariant: probes observe, never perturb.
        if (off.cluster_ipcs != on.cluster_ipcs
                or off.cost.as_dict() != on.cost.as_dict()):
            invariant = False
        records = _audit_records(on)
        assert len(records) == scale.regimen().num_clusters

        stats = audit_summary(on.extra["telemetry"])[0]
        summaries.append({"workload": workload_name, **stats})
        timing[workload_name] = {
            "wall_seconds_off": off.wall_seconds,
            "wall_seconds_on": on.wall_seconds,
            "overhead_ratio_on_vs_off":
                on.wall_seconds / off.wall_seconds
                if off.wall_seconds else float("inf"),
        }
        rows.append([
            workload_name,
            f"{stats['mean_l1d_tag_agreement']:.3f}",
            f"{stats['mean_pht_counter_agreement']:.3f}",
            f"{stats['mean_btb_agreement']:.3f}",
            f"{stats['mean_ras_agreement']:.3f}",
            f"{stats['cold_start_bias']:+.4f}",
            f"{stats['sampling_bias']:+.4f}",
            f"{timing[workload_name]['overhead_ratio_on_vs_off']:.2f}x",
        ])
    assert invariant, "audit-on run diverged from audit-off run"

    # The entire audit-off hot-path cost is this environment check (the
    # controller makes one per run); bound it well under a microsecond
    # apiece so "no measurable overhead" stays an asserted property.
    os.environ[AUDIT_ENV_VAR] = "0"
    try:
        start = time.perf_counter()
        for _ in range(GATE_CHECK_CALLS):
            audit_enabled()
        per_call_us = ((time.perf_counter() - start)
                       / GATE_CHECK_CALLS * 1e6)
    finally:
        os.environ.pop(AUDIT_ENV_VAR, None)
    assert per_call_us < 50.0, (
        f"audit_enabled() gate check costs {per_call_us:.2f}us per call"
    )
    timing["gate_check_microseconds"] = per_call_us

    def mean(name: str) -> float:
        return sum(s[name] for s in summaries) / len(summaries)

    payload = {
        "bench": "audit_overhead",
        "scale": scale.name,
        "workloads": list(WORKLOADS),
        # Deterministic accuracy metrics only: safe to gate tightly.
        "summary": {
            "audit_invariant_results": invariant,
            "mean_l1d_tag_agreement": mean("mean_l1d_tag_agreement"),
            "mean_l2_tag_agreement": mean("mean_l2_tag_agreement"),
            "mean_pht_counter_agreement":
                mean("mean_pht_counter_agreement"),
            "mean_btb_agreement": mean("mean_btb_agreement"),
            "mean_ras_agreement": mean("mean_ras_agreement"),
            "mean_abs_cold_start_error":
                mean("mean_abs_cold_start_error"),
        },
        # Wall-clock numbers are machine-dependent: informational only,
        # deliberately outside "summary" so the trajectory gate ignores
        # them.
        "timing": timing,
        "per_workload": summaries,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")

    def render():
        return format_table(
            ["workload", "l1d agr", "pht agr", "btb agr", "ras agr",
             "cold bias", "samp bias", "on/off wall"],
            rows,
            title=f"Accuracy audit ({scale.name} tier): "
                  f"gate check {per_call_us:.2f}us/call, off == plain",
        )

    text = benchmark.pedantic(render, rounds=3, iterations=1)
    emit("audit_overhead", text)
