"""Perf bench: the vectorized batch core versus the scalar baseline.

Runs R$BP with the batch core on (``REPRO_BATCH_CORE=on``: batched
functional interpreter + vectorized reverse reconstruction) and off
(the scalar `step()` loop and per-reference reverse scans) across the
full equivalence matrix — all nine paper workloads x {raw, compacted}
skip-log sources x {serial, cluster-sharded} topologies — and records
``BENCH_pr6.json`` at the repo root for the trajectory gate.

Equivalence booleans (asserted, and gated in ``benchmarks/TRAJECTORY.json``
— they must never flip): per-cluster IPCs, the full WarmupCost ledger,
the IPC estimate, and the telemetry event counters (which subsume the
gap-log record counts and the reconstruction scan/apply/skip accounting)
are bit-identical between the two modes in every cell.

Headline speedup (asserted): the phases the batch-core switch actually
gates — the cold functional simulation of skip regions (``cold_skip``,
plus the functional ``prefix``) and reverse reconstruction
(``reconstruct``) — run >= 2x faster batched than scalar, aggregated
over the whole matrix at the bench tier.  The detailed hot-simulation
phase (``hot_sim``) is reported alongside but not part of the gated
aggregate: its speedups from this PR (predecoded program columns and
array-backed cache stores) are structural and present in both modes, so
a same-build A/B cannot expose them.  Whole-run wall-clock speedup is
recorded as an informational metric.
"""

from __future__ import annotations

import json
import os
import pathlib

from conftest import emit
from repro.core import ReverseStateReconstruction
from repro.harness import format_table
from repro.sampling import SampledSimulator
from repro.telemetry import Telemetry
from repro.workloads import PAPER_WORKLOADS, build_workload

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr6.json"
SOURCES = ("raw", "compacted")
TOPOLOGIES = (("serial", None), ("sharded", 2))
#: Phases whose engine the REPRO_BATCH_CORE switch selects.
GATED_PHASES = ("cold_skip", "prefix", "reconstruct")


def _run_cell(simulator, source: str, batched: bool) -> dict:
    previous = os.environ.get("REPRO_BATCH_CORE")
    os.environ["REPRO_BATCH_CORE"] = "on" if batched else "off"
    try:
        result = simulator.run(
            ReverseStateReconstruction(fraction=1.0, source=source)
        )
    finally:
        if previous is None:
            os.environ.pop("REPRO_BATCH_CORE", None)
        else:
            os.environ["REPRO_BATCH_CORE"] = previous
    snapshot = result.extra["telemetry"]
    phases = dict(snapshot.phase_seconds)
    return {
        "mode": "batched" if batched else "scalar",
        "source": source,
        "estimate": result.estimate.mean,
        "cluster_ipcs": result.cluster_ipcs,
        "cost": result.cost.as_dict(),
        "counters": dict(snapshot.counters),
        "phase_seconds": phases,
        "gated_seconds": sum(phases.get(name, 0.0)
                             for name in GATED_PHASES),
        "hot_sim_seconds": phases.get("hot_sim", 0.0),
        "wall_seconds": result.wall_seconds,
    }


def test_perf_vectorized_core(benchmark, scale):
    cells = []
    rows = []
    equivalence = {
        "identical_cluster_ipcs": True,
        "identical_costs": True,
        "identical_estimates": True,
        "identical_telemetry_counters": True,
    }
    for workload_name in PAPER_WORKLOADS:
        workload = build_workload(workload_name, mem_scale=scale.mem_scale)
        for topology, cluster_jobs in TOPOLOGIES:
            simulator = SampledSimulator(
                workload, scale.regimen(), scale.configs(),
                warmup_prefix=scale.warmup_prefix,
                detail_ramp=scale.detail_ramp,
                telemetry=Telemetry,
                cluster_jobs=cluster_jobs,
            )
            for source in SOURCES:
                scalar = _run_cell(simulator, source, batched=False)
                batched = _run_cell(simulator, source, batched=True)
                label = f"{workload_name}/{source}/{topology}"
                checks = (
                    ("identical_cluster_ipcs", "cluster_ipcs"),
                    ("identical_costs", "cost"),
                    ("identical_estimates", "estimate"),
                    ("identical_telemetry_counters", "counters"),
                )
                for flag, key in checks:
                    if scalar[key] != batched[key]:
                        equivalence[flag] = False
                    assert scalar[key] == batched[key], (
                        f"{label}: {key} diverges between scalar and "
                        f"batched cores"
                    )
                for cell in (scalar, batched):
                    cells.append({
                        "workload": workload_name,
                        "topology": topology,
                        **{key: value for key, value in cell.items()
                           if key not in ("cluster_ipcs", "counters")},
                    })
                if topology == "serial":
                    rows.append([
                        workload_name, source,
                        f"{scalar['gated_seconds']:.3f}s",
                        f"{batched['gated_seconds']:.3f}s",
                        f"{scalar['gated_seconds'] / batched['gated_seconds']:.2f}x",
                        f"{scalar['hot_sim_seconds']:.3f}s",
                        f"{scalar['wall_seconds'] / batched['wall_seconds']:.2f}x",
                    ])

    def aggregate(key: str, mode: str) -> float:
        return sum(c[key] for c in cells if c["mode"] == mode)

    def speedup(key: str) -> float:
        batched_total = aggregate(key, "batched")
        return (aggregate(key, "scalar") / batched_total
                if batched_total else float("inf"))

    batch_phase_speedup = speedup("gated_seconds")
    wall_speedup = speedup("wall_seconds")
    simulation_seconds = {
        mode: sum(c["gated_seconds"] + c["hot_sim_seconds"]
                  for c in cells if c["mode"] == mode)
        for mode in ("scalar", "batched")
    }
    simulation_phase_speedup = (
        simulation_seconds["scalar"] / simulation_seconds["batched"]
        if simulation_seconds["batched"] else float("inf")
    )

    # The ci tier's tiny regions leave less straight-line span for the
    # batch interpreter to amortize over, so the smoke bar is lower; the
    # committed trajectory baseline comes from the bench tier.
    bar = 2.0 if scale.name == "bench" else 1.5
    assert batch_phase_speedup >= bar, (
        f"batch-gated phase speedup {batch_phase_speedup:.2f}x below the "
        f"{bar:.1f}x bar at the {scale.name} tier"
    )

    payload = {
        "bench": "vectorized_core",
        "scale": scale.name,
        "workloads": list(PAPER_WORKLOADS),
        "sources": list(SOURCES),
        "topologies": [name for name, _ in TOPOLOGIES],
        "gated_phases": list(GATED_PHASES),
        "summary": {
            **equivalence,
            "batch_phase_speedup": batch_phase_speedup,
            "simulation_phase_speedup": simulation_phase_speedup,
            "wall_speedup": wall_speedup,
        },
        "cells": [
            {key: value for key, value in cell.items() if key != "cost"}
            for cell in cells
        ],
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")

    def render():
        return format_table(
            ["workload", "source", "scalar gated", "batched gated",
             "gated speedup", "hot_sim", "wall speedup"],
            rows,
            title=f"Vectorized batch core ({scale.name} tier, serial "
                  f"rows): gated phases {batch_phase_speedup:.2f}x, "
                  f"wall {wall_speedup:.2f}x, all cells bit-identical",
        )

    text = benchmark.pedantic(render, rounds=3, iterations=1)
    emit("perf_vectorized_core", text)
