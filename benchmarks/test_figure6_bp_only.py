"""Figure 6: branch-predictor warm-up only.

Reverse branch-predictor reconstruction (RBP) versus SMARTS BP warming
(SBP), with caches left stale in both.  Expected shape (paper): the two
achieve nearly identical relative error — both much worse than cache
warm-up, because stale caches dominate non-sampling bias — while RBP
applies far fewer predictor updates.
"""

from conftest import emit
from repro.harness import (
    average_over_workloads,
    format_method_summary,
    format_per_workload,
    format_speedups,
)
from repro.sampling import SampledSimulator
from repro.warmup import make_method
from repro.workloads import build_workload

METHODS = ["RBP", "SBP"]


def test_figure6_bp_only(benchmark, scale, matrix):
    def representative_run():
        simulator = SampledSimulator(
            build_workload("gcc"), scale.regimen(), scale.configs(),
            warmup_prefix=scale.warmup_prefix,
        )
        return simulator.run(make_method("RBP"))

    benchmark.pedantic(representative_run, rounds=1, iterations=1)

    summary = format_method_summary(
        matrix, METHODS, "Figure 6: branch-predictor warm-up only (averages)",
    )
    grid = format_per_workload(
        matrix, METHODS, value="error",
        title="Figure 6: relative error per workload",
    )
    speedups = format_speedups(
        matrix, "RBP", baseline="SBP",
        title="Figure 6: RBP speedup over SBP",
    )
    emit("figure6_bp_only", "\n\n".join([summary, grid, speedups]))

    rbp_error, rbp_work, _ = average_over_workloads(matrix, "RBP")
    sbp_error, sbp_work, _ = average_over_workloads(matrix, "SBP")

    # RBP approximates SBP accuracy (paper: 22.3% vs 22.2%).
    assert abs(rbp_error - sbp_error) < 0.05
    # ... at lower work (paper: average speedup 1.48).
    assert rbp_work < sbp_work

    # Warming the BP alone leaves most of the error (stale caches): both
    # must be far worse than full warming.
    full_error, _w, _t = average_over_workloads(matrix, "S$BP")
    assert rbp_error > 2 * full_error

    # Update savings: the on-demand walk touches a fraction of the
    # predictor updates SMARTS applies.
    sbp_updates = sum(
        e.outcomes["SBP"].run.cost.predictor_updates
        for e in matrix.values()
    )
    rbp_updates = sum(
        e.outcomes["RBP"].run.cost.predictor_updates
        for e in matrix.values()
    )
    assert rbp_updates < sbp_updates / 3
