"""Ablation: state-level fidelity behind the IPC numbers.

Scores each warm-up family's microarchitectural state against the SMARTS
reference at every cluster boundary — the mechanism underneath Figures
5-7: cache-content overlap drives IPC accuracy; predictor-state
agreement matters far less.
"""

from conftest import emit
from repro.analysis import measure_state_fidelity
from repro.core import ReverseStateReconstruction
from repro.harness import format_table
from repro.sampling import SamplingRegimen
from repro.warmup import FixedPeriodWarmup, NoWarmup
from repro.workloads import build_workload


def test_ablation_state_fidelity(benchmark, scale):
    workload = build_workload("twolf")
    regimen = SamplingRegimen(
        scale.total_instructions // 2, scale.num_clusters // 2,
        scale.cluster_size, seed=scale.seed,
    )

    methods = [
        NoWarmup(),
        FixedPeriodWarmup(0.2),
        ReverseStateReconstruction(0.2),
        ReverseStateReconstruction(1.0),
    ]

    reports = {}

    def run_all():
        for method in methods:
            reports[method.name] = measure_state_fidelity(
                workload, regimen, method, scale.configs(),
                warmup_prefix=scale.warmup_prefix,
            )
        return reports

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, report in reports.items():
        summary = report.summary()
        rows.append([
            name,
            f"{summary['l1d_overlap'] * 100:.1f}%",
            f"{summary['l2_overlap'] * 100:.1f}%",
            f"{summary['counter_agreement'] * 100:.1f}%",
            f"{summary['prediction_agreement'] * 100:.1f}%",
            f"{summary['ghr_match'] * 100:.0f}%",
            f"{summary['ras_top_match'] * 100:.0f}%",
        ])
    text = format_table(
        ["method", "L1D overlap", "L2 overlap", "counters equal",
         "predictions equal", "GHR match", "RAS top match"],
        rows,
        title="Ablation: state fidelity vs SMARTS reference (twolf)",
    )
    emit("ablation_state_fidelity", text)

    none_summary = reports["None"].summary()
    rsr_full = reports["R$BP (100%)"].summary()
    rsr_partial = reports["R$BP (20%)"].summary()

    # Reconstruction repairs cache state far beyond stale.
    assert rsr_full["l1d_overlap"] > none_summary["l1d_overlap"] + 0.2
    # More log -> more repaired state.
    assert rsr_full["l1d_overlap"] >= rsr_partial["l1d_overlap"] - 0.02
    # The GHR rebuild is exact.
    assert rsr_full["ghr_match"] == 1.0
