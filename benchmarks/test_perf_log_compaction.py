"""Perf bench: online skip-log compaction versus the raw tuple log.

Runs R$BP through both reconstruction sources on a three-workload slice
at two log fractions, asserts the compacted path is bit-identical to the
raw reverse scan (per-cluster IPCs and the full cost breakdown), and
records the retention/walk-step ratios into ``BENCH_pr3.json`` at the
repo root so CI can track the compaction win as a regression metric.

Headline requirements (asserted): the compacted source cuts peak per-gap
log records by >= 2x across the matrix, and cuts reconstruction log-walk
steps by >= 2x on the full-log (fraction 1.0) cells where the packed
PHT window index is active.
"""

from __future__ import annotations

import json
import pathlib

from conftest import emit
from repro.core import ReverseStateReconstruction
from repro.harness import compaction_stats, format_table
from repro.sampling import SampledSimulator
from repro.telemetry import Telemetry
from repro.workloads import build_workload

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr3.json"
WORKLOADS = ("gcc", "twolf", "mcf")
FRACTIONS = (1.0, 0.4)
SOURCES = ("raw", "compacted")


def _run_cell(simulator, fraction: float, source: str) -> dict:
    result = simulator.run(
        ReverseStateReconstruction(fraction=fraction, source=source)
    )
    snapshot = result.extra["telemetry"]
    stats = compaction_stats(snapshot)
    return {
        "source": source,
        "fraction": fraction,
        "estimate": result.estimate.mean,
        "cluster_ipcs": result.cluster_ipcs,
        "cost": result.cost.as_dict(),
        "raw_records": stats["raw_records"],
        "stored_records": stats["stored_records"],
        "stored_bytes": stats["stored_bytes"],
        "dedup_ratio": stats["dedup_ratio"],
        "peak_gap_records": stats["peak_gap_records"],
        "peak_gap_bytes": stats["peak_gap_bytes"],
        "walk_steps":
            snapshot.counters.get("reconstruct.log_walk_steps", 0),
        "wall_seconds": result.wall_seconds,
    }


def test_perf_log_compaction(benchmark, scale):
    cells = []
    rows = []
    for workload_name in WORKLOADS:
        workload = build_workload(workload_name, mem_scale=scale.mem_scale)
        simulator = SampledSimulator(
            workload, scale.regimen(), scale.configs(),
            warmup_prefix=scale.warmup_prefix,
            detail_ramp=scale.detail_ramp,
            telemetry=Telemetry,
        )
        for fraction in FRACTIONS:
            pair = {
                source: _run_cell(simulator, fraction, source)
                for source in SOURCES
            }
            raw, compacted = pair["raw"], pair["compacted"]
            # The engine's correctness contract: compaction changes the
            # representation, never the result or its cost accounting.
            assert raw["cluster_ipcs"] == compacted["cluster_ipcs"], (
                f"{workload_name} f={fraction}: per-cluster IPCs diverge "
                "between raw and compacted sources"
            )
            assert raw["cost"] == compacted["cost"], (
                f"{workload_name} f={fraction}: warm-up cost breakdown "
                "diverges between raw and compacted sources"
            )
            for cell in pair.values():
                # Telemetry totals agree with the WarmupCost accounting:
                # observed log records are the same quantity both report.
                assert cell["raw_records"] == cell["cost"]["log_records"], (
                    f"{workload_name} f={fraction} {cell['source']}: "
                    "telemetry log records disagree with WarmupCost"
                )
                cells.append({"workload": workload_name, **cell})
            rows.append([
                workload_name, f"{fraction:.0%}",
                f"{raw['peak_gap_records']:,}",
                f"{compacted['peak_gap_records']:,}",
                f"{raw['peak_gap_records'] / compacted['peak_gap_records']:.2f}x",
                f"{compacted['dedup_ratio']:.2f}x",
                f"{raw['walk_steps']:,}",
                f"{compacted['walk_steps']:,}",
            ])

    def ratio(numer: float, denom: float) -> float:
        return numer / denom if denom else float("inf")

    raw_cells = [c for c in cells if c["source"] == "raw"]
    compacted_cells = [c for c in cells if c["source"] == "compacted"]
    peak_ratio = ratio(
        sum(c["peak_gap_records"] for c in raw_cells),
        sum(c["peak_gap_records"] for c in compacted_cells),
    )
    # The packed PHT window index only replaces the log walk when the
    # full log is retained; partial fractions replay the conditional
    # tail verbatim, so the walk comparison is scoped to fraction 1.0.
    walk_ratio = ratio(
        sum(c["walk_steps"] for c in raw_cells if c["fraction"] == 1.0),
        sum(c["walk_steps"] for c in compacted_cells
            if c["fraction"] == 1.0),
    )
    bytes_ratio = ratio(
        sum(c["peak_gap_bytes"] for c in raw_cells),
        sum(c["peak_gap_bytes"] for c in compacted_cells),
    )
    assert peak_ratio >= 2.0, (
        f"peak log-record reduction {peak_ratio:.2f}x below the 2x bar"
    )
    assert walk_ratio >= 2.0, (
        f"log-walk-step reduction {walk_ratio:.2f}x below the 2x bar"
    )

    payload = {
        "bench": "log_compaction",
        "scale": scale.name,
        "workloads": list(WORKLOADS),
        "fractions": list(FRACTIONS),
        "summary": {
            "peak_record_ratio": peak_ratio,
            "walk_step_ratio_full_log": walk_ratio,
            "peak_byte_ratio": bytes_ratio,
            "identical_results": True,
        },
        "cells": [
            {key: value for key, value in cell.items()
             if key != "cluster_ipcs"}
            for cell in cells
        ],
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")

    def render():
        return format_table(
            ["workload", "fraction", "raw peak recs", "compact peak recs",
             "peak ratio", "dedup", "raw walk", "compact walk"],
            rows,
            title=f"Skip-log compaction ({scale.name} tier): "
                  f"peak {peak_ratio:.2f}x, walk {walk_ratio:.2f}x",
        )

    text = benchmark.pedantic(render, rounds=3, iterations=1)
    emit("perf_log_compaction", text)
