"""Figure 7: cache and branch-predictor warm-up combined.

The paper's headline figure: average relative error and simulation cost
for no warm-up, fixed-period warm-up at 20/40/80%, SMARTS (S$BP), and
Reverse State Reconstruction at 20/40/80/100%.  Expected shape:

- no warm-up: lowest cost, highest error (paper ~23%);
- SMARTS: lowest error, highest cost;
- R$BP: SMARTS-like error as the fraction grows, at reduced cost
  (paper speedups 1.64 / 1.51 / 1.25 at 20 / 40 / 80%).
"""

from conftest import emit
from repro.harness import (
    average_over_workloads,
    format_method_summary,
    format_per_workload,
    format_speedups,
)
from repro.sampling import SampledSimulator
from repro.warmup import make_method
from repro.workloads import build_workload

METHODS = [
    "None", "FP (20%)", "FP (40%)", "FP (80%)", "S$BP",
    "R$BP (20%)", "R$BP (40%)", "R$BP (80%)", "R$BP (100%)",
]


def test_figure7_combined(benchmark, scale, matrix):
    def representative_run():
        simulator = SampledSimulator(
            build_workload("twolf"), scale.regimen(), scale.configs(),
            warmup_prefix=scale.warmup_prefix,
        )
        return simulator.run(make_method("R$BP (20%)"))

    benchmark.pedantic(representative_run, rounds=1, iterations=1)

    summary = format_method_summary(
        matrix, METHODS,
        "Figure 7: cache + branch-predictor warm-up (averages)",
    )
    grid = format_per_workload(
        matrix, METHODS, value="error",
        title="Figure 7: relative error per workload",
    )
    speedups = format_speedups(
        matrix, "R$BP (20%)",
        title="Figure 7: R$BP (20%) speedup over S$BP",
    )
    emit("figure7_combined", "\n\n".join([summary, grid, speedups]))

    none_error, none_work, _ = average_over_workloads(matrix, "None")
    smarts_error, smarts_work, _ = average_over_workloads(matrix, "S$BP")

    # No warm-up: least overhead, highest error.
    for name in METHODS:
        if name == "None":
            continue
        _error, work, _wall = average_over_workloads(matrix, name)
        assert none_work < work, name
    assert none_error > smarts_error
    assert none_error > 0.10  # substantial non-sampling bias exists

    # SMARTS is the accuracy reference; RSR converges to it.
    r100_error, r100_work, _ = average_over_workloads(matrix, "R$BP (100%)")
    assert abs(r100_error - smarts_error) < 0.04

    # Every RSR fraction is cheaper than SMARTS (the paper's speedup),
    # with cost increasing in the fraction.
    previous_work = 0.0
    for name in ("R$BP (20%)", "R$BP (40%)", "R$BP (80%)", "R$BP (100%)"):
        _error, work, _wall = average_over_workloads(matrix, name)
        assert work < smarts_work, name
        assert work >= previous_work * 0.98, name  # non-decreasing cost
        previous_work = work

    # Accuracy improves (or holds) as more of the log is consumed.
    r20_error, _w, _t = average_over_workloads(matrix, "R$BP (20%)")
    assert r100_error <= r20_error + 0.02
