"""Figure 3: prediction of branch counters from reverse histories.

Regenerates the paper's counter-inference cases and benchmarks both the
a-priori table construction and the lookup path.
"""

from conftest import emit
from repro.core.counter_table import (
    CounterInferenceTable,
    default_table,
)
from repro.harness import format_table

_STATE_NAMES = {0: "strongly NT", 1: "weakly NT", 2: "weakly T",
                3: "strongly T", None: "left stale"}


def _encode(reverse_history):
    bits = 0
    for position, taken in enumerate(reverse_history):
        bits |= int(taken) << position
    return len(reverse_history), bits


def test_figure3_counter_inference(benchmark):
    table = default_table()

    cases = [
        ("case 1: T T T", [True, True, True]),
        ("case 2: N N N", [False, False, False]),
        ("case 3: N T T T (pattern deeper)", [False, True, True, True]),
        ("ambiguous: T", [True]),
        ("ambiguous: N", [False]),
        ("ambiguous: T T", [True, True]),
        ("ambiguous: T N T N", [True, False, True, False]),
        ("no history", []),
    ]

    def lookup_all():
        return [table.lookup(*_encode(history)) for _name, history in cases]

    inferences = benchmark.pedantic(lookup_all, rounds=100, iterations=100)

    rows = []
    for (name, _history), inference in zip(cases, inferences):
        rows.append([
            name,
            _STATE_NAMES[inference.value],
            "exact" if inference.exact else
            f"possible {set(inference.possible)}",
        ])
    text = format_table(
        ["reverse history (newest first)", "inferred counter", "status"],
        rows,
        title="Figure 3: prediction of branch counters",
    )
    emit("figure3_counter_table", text)

    # Paper-stated outcomes.
    assert inferences[0].value == 3 and inferences[0].exact
    assert inferences[1].value == 0 and inferences[1].exact
    assert inferences[2].exact
    assert not inferences[3].exact
    assert inferences[7].value is None


def test_figure3_table_construction(benchmark):
    """Cost of building the a-priori table ("built a priori so that
    reconstruction can be implemented through a table lookup")."""
    table = benchmark.pedantic(
        lambda: CounterInferenceTable(max_history=10),
        rounds=3, iterations=1,
    )
    assert len(table) == sum(2 ** k for k in range(11))
