"""Figure 2: reverse reconstruction of an individual cache set.

Regenerates the paper's worked example (stale set + stream E, A, F, C)
and benchmarks the cache-reconstruction primitive over a realistic logged
stream to quantify the applied/skipped split.
"""

import numpy as np

from conftest import emit
from repro.cache import Cache, CacheConfig, MemoryHierarchy, WritePolicy, \
    paper_hierarchy_config
from repro.core import ReverseCacheReconstructor, SkipRegionLog
from repro.core.logging import REF_LOAD
from repro.harness import format_table


def _figure2_cache():
    cache = Cache(CacheConfig("fig2", 256, 64, 4, WritePolicy.WTNA, 1))
    for letter in "CDAB":  # leaves stale order B A D C (MRU..LRU)
        cache.access((ord(letter) - ord("A") + 4) * 256)
    return cache


def test_figure2_worked_example(benchmark):
    addresses = {c: (ord(c) - ord("A") + 4) * 256 for c in "ABCDEF"}

    forward = _figure2_cache()
    for letter in "EAFC":
        forward.access(addresses[letter])

    def reverse_pass():
        cache = _figure2_cache()
        cache.begin_reconstruction()
        outcomes = []
        for letter in reversed("EAFC"):
            outcomes.append(cache.reconstruct_reference(addresses[letter]))
        return cache, outcomes

    cache, outcomes = benchmark.pedantic(reverse_pass, rounds=50,
                                         iterations=10)
    assert cache.state_fingerprint() == forward.state_fingerprint()
    assert outcomes == [True, True, True, True]

    def describe(c):
        return [
            "-" if t is None else chr(ord("A") + t // 4 - 4)
            for t in (c.tags[0][w] for w in c.order[0])
        ]

    text = format_table(
        ["simulation", "MRU", "", "", "LRU"],
        [["normal (forward)"] + describe(forward),
         ["reverse reconstruction"] + describe(cache)],
        title="Figure 2: reverse reconstruction of an individual cache set "
              "(stale B A D C; stream E A F C)",
    )
    emit("figure2_cache_example", text)


def test_figure2_bulk_reconstruction_rates(benchmark):
    """Reconstruction over a realistic stream: most logged references are
    skipped as redundant — the savings the paper's §3.1 promises."""
    hierarchy = MemoryHierarchy(paper_hierarchy_config(scale=32))
    rng = np.random.default_rng(7)
    log = SkipRegionLog()
    window = 0
    for _position in range(20_000):
        window += 1
        offset = int(rng.integers(0, 512))
        address = ((window // 16 + offset) % 4096) * 64
        log.memory_records.append((0x1000_0000 + address, REF_LOAD))

    reconstructor = ReverseCacheReconstructor(hierarchy)
    stats = benchmark.pedantic(
        lambda: reconstructor.reconstruct(log, fraction=1.0),
        rounds=3, iterations=1,
    )
    assert stats.scanned == 20_000
    assert stats.applied <= (
        hierarchy.l1d.num_sets * hierarchy.l1d.associativity
        + hierarchy.l2.num_sets * hierarchy.l2.associativity
    )
    # The whole point: the vast majority of the log is skipped.
    assert stats.skip_fraction > 0.8
