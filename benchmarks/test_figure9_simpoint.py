"""Figure 9: SimPoint comparison.

Regenerates the paper's SimPoint study: small and large interval sizes,
with and without SMARTS warm-up while skipping to each simulation point,
against cluster sampling with R$BP (20%).  Expected shape:

- small intervals, no warm-up: large error (paper: 20% at 50K);
- small intervals + SMARTS warm-up: error drops (paper: 8%);
- large intervals: accurate but with much more detailed simulation
  (paper: 4.2% at 10M, at high cost);
- sampled simulation with RSR: competitive accuracy, and only it
  supports confidence intervals.
"""

from conftest import emit
from repro.harness import format_table, true_run_for
from repro.simpoint import run_simpoints, select_simpoints
from repro.warmup import SmartsWarmup
from repro.workloads import build_workload

WORKLOADS = ("gcc", "parser", "twolf", "vpr", "perl")


def _simpoint_row(workload, total, interval, warmup, scale):
    selection = select_simpoints(workload, total, interval, max_points=15)
    return run_simpoints(workload, selection, warmup=warmup,
                         configs=scale.configs())


def test_figure9_simpoint(benchmark, scale, matrix):
    small_interval = max(200, scale.cluster_size // 2)
    large_interval = scale.cluster_size * 8
    total = scale.total_instructions

    workload = build_workload(WORKLOADS[0])
    benchmark.pedantic(
        lambda: _simpoint_row(workload, total, small_interval, None, scale),
        rounds=1, iterations=1,
    )

    errors = {
        "small": [], "small+SMARTS": [], "large": [], "large+SMARTS": [],
        "R$BP (20%)": [],
    }
    for name in WORKLOADS:
        workload = build_workload(name)
        true_ipc = true_run_for(name, scale).ipc
        for label, interval, warmup in (
            ("small", small_interval, None),
            ("small+SMARTS", small_interval, SmartsWarmup()),
            ("large", large_interval, None),
            ("large+SMARTS", large_interval, SmartsWarmup()),
        ):
            result = _simpoint_row(workload, total, interval, warmup, scale)
            errors[label].append(result.relative_error(true_ipc))
        errors["R$BP (20%)"].append(
            matrix[name].outcomes["R$BP (20%)"].relative_error
        )

    rows = []
    for label, values in errors.items():
        interval = small_interval if label.startswith("small") else \
            large_interval if label.startswith("large") else \
            scale.cluster_size
        rows.append([
            label,
            str(interval),
            f"{sum(values) / len(values) * 100:.2f}%",
        ])
    text = format_table(
        ["configuration", "interval/cluster size", "avg rel. error"],
        rows,
        title=f"Figure 9: SimPoint comparison over {', '.join(WORKLOADS)} "
              "(15 points)",
    )
    emit("figure9_simpoint", text)

    mean = {k: sum(v) / len(v) for k, v in errors.items()}
    # Warm-up rescues small intervals (paper: 20% -> 8%).
    assert mean["small+SMARTS"] < mean["small"]
    # Large intervals beat small unwarmed intervals.
    assert mean["large"] < mean["small"]
    # Sampled simulation with RSR is competitive with the best SimPoint
    # configuration (paper: 1.7% vs 4.2%).
    assert mean["R$BP (20%)"] < mean["small"]
